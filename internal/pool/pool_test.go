package pool

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDoRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 32} {
		n := 257
		counts := make([]int32, n)
		Do(workers, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDoEmptyAndSingle(t *testing.T) {
	Do(4, 0, func(i int) { t.Fatal("fn called for n=0") })
	ran := false
	Do(4, 1, func(i int) { ran = true })
	if !ran {
		t.Fatal("fn not called for n=1")
	}
}

func TestDoBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	Do(workers, 64, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		runtime.Gosched()
		cur.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent workers, want <= %d", p, workers)
	}
}

// TestDoPanicLowestIndex: with several panicking items, the caller sees the
// lowest index's panic value regardless of scheduling.
func TestDoPanicLowestIndex(t *testing.T) {
	defer func() {
		if p := recover(); p != "boom-3" {
			t.Fatalf("recovered %v, want boom-3", p)
		}
	}()
	Do(8, 32, func(i int) {
		if i == 3 || i == 17 || i == 31 {
			panic("boom-" + string(rune('0'+i%10)))
		}
	})
	t.Fatal("Do returned instead of panicking")
}

func TestDoPanicInline(t *testing.T) {
	defer func() {
		if p := recover(); p != "serial" {
			t.Fatalf("recovered %v, want serial", p)
		}
	}()
	Do(1, 4, func(i int) {
		if i == 2 {
			panic("serial")
		}
	})
	t.Fatal("inline Do swallowed the panic")
}

func TestWorkersAndDivide(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-1) = %d", got)
	}
	if got := Divide(8, 2); got != 4 {
		t.Errorf("Divide(8,2) = %d", got)
	}
	if got := Divide(2, 8); got != 1 {
		t.Errorf("Divide(2,8) = %d", got)
	}
	if got := Divide(8, 0); got != 8 {
		t.Errorf("Divide(8,0) = %d", got)
	}
}

// TestDivideClampsZeroBudgetChildren is the regression test for the
// budget < workers edge case: nested division must never hand a child a
// zero (or negative) worker budget — every child gets at least 1.
func TestDivideClampsZeroBudgetChildren(t *testing.T) {
	cases := []struct{ total, outer, want int }{
		{1, 2, 1},   // budget smaller than fan-out
		{3, 4, 1},   // truncating division would yield 0
		{0, 4, 1},   // no budget at all
		{-2, 4, 1},  // negative budget (repeated nested division gone wrong)
		{4, -1, 4},  // degenerate outer
		{7, 2, 3},   // ordinary truncation unchanged
		{16, 4, 4},  // exact division unchanged
	}
	for _, c := range cases {
		if got := Divide(c.total, c.outer); got != c.want {
			t.Errorf("Divide(%d,%d) = %d, want %d", c.total, c.outer, got, c.want)
		}
		if got := Divide(c.total, c.outer); got < 1 {
			t.Fatalf("Divide(%d,%d) = %d: zero-budget child", c.total, c.outer, got)
		}
	}
	// Nested division to exhaustion still yields a usable budget.
	w := 2
	for i := 0; i < 8; i++ {
		w = Divide(w, 4)
		if w < 1 {
			t.Fatalf("nested Divide collapsed to %d", w)
		}
	}
}

func TestDoContextNilCtxRunsAll(t *testing.T) {
	n := 64
	counts := make([]int32, n)
	if err := DoContext(nil, 4, n, func(i int) { atomic.AddInt32(&counts[i], 1) }); err != nil {
		t.Fatalf("DoContext(nil) err = %v", err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

// TestDoContextCancelStopsClaims: a context cancelled mid-loop stops new
// claims on every worker; items already claimed finish, and the call
// reports ctx.Err().
func TestDoContextCancelStopsClaims(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		const n = 1 << 20
		err := DoContext(ctx, workers, n, func(i int) {
			if ran.Add(1) == 8 {
				cancel()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got >= n {
			t.Fatalf("workers=%d: cancellation did not stop the loop (%d items ran)", workers, got)
		}
		cancel()
	}
}

func TestDoContextPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := DoContext(ctx, 4, 16, func(i int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d items ran under a pre-cancelled ctx", ran.Load())
	}
}

func TestDoObservedContextCompleteIsNil(t *testing.T) {
	if err := DoObservedContext(context.Background(), nil, "site", 2, 8, func(i int) {}); err != nil {
		t.Fatalf("err = %v", err)
	}
}
