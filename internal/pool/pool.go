// Package pool is the bounded worker pool behind DiffTrace's intra-run
// parallelism (the paper's future-work item 1: "optimizing [components] to
// exploit multi-core CPUs"). It provides a deterministic-friendly parallel
// for-loop: work items are indexed, results land in caller-owned slots, and
// panics are re-raised in the caller at a deterministic index, so callers
// can parallelize a stage without changing its observable behaviour.
//
// The package depends only on the standard library and the (equally
// dependency-free) obs layer, so every layer — nlr, jaccard, core, rank —
// can import it without cycles.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"difftrace/internal/obs"
)

// Workers resolves a worker-count knob: n itself when positive, otherwise
// runtime.GOMAXPROCS(0) — the "as many as the hardware allows" default.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Divide splits a total worker budget across outer concurrent tasks so the
// nested fan-out (outer tasks × inner workers) does not oversubscribe the
// machine: it returns max(1, total/outer). The clamp matters when the
// budget is smaller than the fan-out (total < outer, including total <= 0
// after repeated nested division): every child must still get one worker,
// or an inner Do would degenerate to a zero-iteration loop and silently
// drop its items.
func Divide(total, outer int) int {
	if outer < 1 {
		outer = 1
	}
	w := total / outer
	if w < 1 {
		w = 1
	}
	return w
}

// Do runs fn(i) for every i in [0, n) on up to workers goroutines and
// returns when all calls have finished. Items are claimed dynamically, so
// unbalanced work still packs tightly; with workers <= 1 (or n <= 1) the
// loop runs inline on the caller's goroutine.
//
// A panic inside fn does not kill the process: every worker finishes its
// remaining items' claims, and the panic raised at the lowest panicking
// index is re-raised on the caller's goroutine — deterministic no matter
// which worker hit it first. (Pipeline stages that must survive panics wrap
// fn bodies in resilience.Guard instead; Do's re-raise is the non-resilient
// path where a panic is expected to propagate exactly as in a serial loop.)
func Do(workers, n int, fn func(i int)) {
	doPool(nil, workers, n, fn)
}

// DoContext is Do with cooperative cancellation: every worker re-checks ctx
// between item claims (and the inline path checks between iterations), so a
// cancelled loop stops claiming new items while items already claimed run to
// completion. It returns ctx.Err() when the loop was cut short, nil when
// every item ran. A nil ctx is never cancelled — DoContext(nil, ...) is
// exactly Do.
//
// Cancellation does not disturb the determinism contract: items that ran
// produced exactly what a serial run would have, and the caller sees a
// non-nil error whenever any item may have been skipped, so no partial
// result is ever mistaken for a complete one.
func DoContext(ctx context.Context, workers, n int, fn func(i int)) error {
	doPool(ctx, workers, n, fn)
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}

// DoObserved is Do with worker busy/idle accounting folded into r under the
// named call site: each loop records its item count, effective worker
// count, total busy time inside fn, and elapsed wall time, from which the
// manifest derives per-site utilization (busy / workers×wall). With a nil
// Run it is exactly Do — no clocks, no wrappers, no allocations — which is
// the disabled fast path the pipeline runs by default.
func DoObserved(r *obs.Run, site string, workers, n int, fn func(i int)) {
	doObserved(nil, r, site, workers, n, fn)
}

// DoObservedContext is DoObserved with DoContext's cancellation semantics.
func DoObservedContext(ctx context.Context, r *obs.Run, site string, workers, n int, fn func(i int)) error {
	doObserved(ctx, r, site, workers, n, fn)
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}

func doObserved(ctx context.Context, r *obs.Run, site string, workers, n int, fn func(i int)) {
	// Live-progress cursor: when the ctx carries a job Progress, the pool
	// site name is the most precise "what is running right now" available
	// (one write per parallel loop, not per item). Set even on the nil-Run
	// fast path — progress and manifests are independently enabled.
	obs.ProgressFrom(ctx).SetStage(site)
	if r == nil || n <= 0 {
		doPool(ctx, workers, n, fn)
		return
	}
	eff := workers
	if eff > n {
		eff = n
	}
	if eff < 1 {
		eff = 1
	}
	var busy atomic.Int64
	start := time.Now()
	// Record even when fn panics (Do re-raises after all workers drain):
	// a site that dies mid-loop still shows how far it got.
	defer func() {
		r.Pool(site).Record(eff, n, time.Duration(busy.Load()), time.Since(start))
	}()
	doPool(ctx, workers, n, func(i int) {
		t0 := time.Now()
		defer func() { busy.Add(int64(time.Since(t0))) }()
		fn(i)
	})
}

// cancelled reports whether ctx is non-nil and already cancelled.
func cancelled(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

func doPool(ctx context.Context, workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if cancelled(ctx) {
				return
			}
			fn(i)
		}
		return
	}
	panics := make([]any, n)
	var panicked atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if cancelled(ctx) {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if p := recover(); p != nil {
							panics[i] = p
							panicked.Store(true)
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		for _, p := range panics {
			if p != nil {
				panic(p)
			}
		}
	}
}
