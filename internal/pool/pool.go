// Package pool is the bounded worker pool behind DiffTrace's intra-run
// parallelism (the paper's future-work item 1: "optimizing [components] to
// exploit multi-core CPUs"). It provides a deterministic-friendly parallel
// for-loop: work items are indexed, results land in caller-owned slots, and
// panics are re-raised in the caller at a deterministic index, so callers
// can parallelize a stage without changing its observable behaviour.
//
// The package depends only on the standard library and the (equally
// dependency-free) obs layer, so every layer — nlr, jaccard, core, rank —
// can import it without cycles.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"difftrace/internal/obs"
)

// Workers resolves a worker-count knob: n itself when positive, otherwise
// runtime.GOMAXPROCS(0) — the "as many as the hardware allows" default.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Divide splits a total worker budget across outer concurrent tasks so the
// nested fan-out (outer tasks × inner workers) does not oversubscribe the
// machine: it returns max(1, total/outer).
func Divide(total, outer int) int {
	if outer < 1 {
		outer = 1
	}
	if w := total / outer; w > 1 {
		return w
	}
	return 1
}

// Do runs fn(i) for every i in [0, n) on up to workers goroutines and
// returns when all calls have finished. Items are claimed dynamically, so
// unbalanced work still packs tightly; with workers <= 1 (or n <= 1) the
// loop runs inline on the caller's goroutine.
//
// A panic inside fn does not kill the process: every worker finishes its
// remaining items' claims, and the panic raised at the lowest panicking
// index is re-raised on the caller's goroutine — deterministic no matter
// which worker hit it first. (Pipeline stages that must survive panics wrap
// fn bodies in resilience.Guard instead; Do's re-raise is the non-resilient
// path where a panic is expected to propagate exactly as in a serial loop.)
func Do(workers, n int, fn func(i int)) {
	doPool(workers, n, fn)
}

// DoObserved is Do with worker busy/idle accounting folded into r under the
// named call site: each loop records its item count, effective worker
// count, total busy time inside fn, and elapsed wall time, from which the
// manifest derives per-site utilization (busy / workers×wall). With a nil
// Run it is exactly Do — no clocks, no wrappers, no allocations — which is
// the disabled fast path the pipeline runs by default.
func DoObserved(r *obs.Run, site string, workers, n int, fn func(i int)) {
	if r == nil || n <= 0 {
		doPool(workers, n, fn)
		return
	}
	eff := workers
	if eff > n {
		eff = n
	}
	if eff < 1 {
		eff = 1
	}
	var busy atomic.Int64
	start := time.Now()
	// Record even when fn panics (Do re-raises after all workers drain):
	// a site that dies mid-loop still shows how far it got.
	defer func() {
		r.Pool(site).Record(eff, n, time.Duration(busy.Load()), time.Since(start))
	}()
	doPool(workers, n, func(i int) {
		t0 := time.Now()
		defer func() { busy.Add(int64(time.Since(t0))) }()
		fn(i)
	})
}

func doPool(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	panics := make([]any, n)
	var panicked atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if p := recover(); p != nil {
							panics[i] = p
							panicked.Store(true)
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		for _, p := range panics {
			if p != nil {
				panic(p)
			}
		}
	}
}
