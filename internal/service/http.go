package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"

	"difftrace/internal/obs/telemetry"
)

// jobResponse is the wire shape of a job: the JobView plus, for done
// jobs, the stored artifacts — the report text and the scrubbed obs
// manifest that is the job's telemetry record.
type jobResponse struct {
	JobView
	Report   string          `json:"report,omitempty"`
	Manifest json.RawMessage `json:"manifest,omitempty"`
}

// errorResponse is the wire shape of every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the difftraced HTTP API:
//
//	POST /v1/diff      submit a pair           202 queued / 200 cached /
//	                                           400 bad request /
//	                                           429 queue full (Retry-After) /
//	                                           503 draining
//	GET  /v1/jobs/{id} job status + artifacts  200 / 404
//	                   (running jobs include live progress + trace_id)
//	GET  /healthz      liveness + queue state  200 ok /
//	                                           503 draining (Retry-After)
//	GET  /metrics      Prometheus exposition   200 (text; ?format=json for
//	                                           the live manifest, ?format=
//	                                           summary for the human table)
//	GET  /debug/flight recent completed jobs   200 (JSON ring, newest first)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/diff", s.handleDiff)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/flight", s.handleFlight)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // response writer errors have no recovery
}

func (s *Service) handleDiff(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var req DiffRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	view, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	resp := jobResponse{JobView: view}
	status := http.StatusAccepted
	if view.State == StateDone {
		status = http.StatusOK
		s.attachArtifacts(&resp)
	}
	writeJSON(w, status, resp)
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET only"})
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such job"})
		return
	}
	view, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no such job"})
		return
	}
	resp := jobResponse{JobView: view}
	if view.State == StateDone {
		s.attachArtifacts(&resp)
	}
	writeJSON(w, http.StatusOK, resp)
}

// attachArtifacts loads the stored report/manifest into the response. A
// done job whose artifacts fail verification (quarantined between runs)
// degrades the view: state reverts to failed with an explanatory error
// rather than serving corrupt bytes.
func (s *Service) attachArtifacts(resp *jobResponse) {
	report, manifest, ok := s.Artifacts(resp.ID)
	if !ok {
		resp.State = StateFailed
		resp.Error = "stored artifacts missing or quarantined; resubmit to recompute"
		return
	}
	resp.Report = string(report)
	resp.Manifest = json.RawMessage(manifest)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		// A draining service is past saving for this client; the hint tells
		// load balancers when a replacement is worth probing.
		w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfterSeconds()))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":    "draining",
			"draining":  true,
			"queue_len": s.QueueDepth(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"draining":  false,
		"queue_len": s.QueueDepth(),
	})
}

// handleMetrics serves the service registry. The default is the Prometheus
// text exposition format (scrapable); ?format=json returns the live —
// unscrubbed — manifest JSON, and ?format=summary the human-readable table
// the endpoint used to serve. None of these outputs are deterministic and
// none are stored: scrubbing applies to artifacts, not scrapes.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Obs == nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("metrics disabled (no obs run configured)\n")) //nolint:errcheck
		return
	}
	// The flight ring's depth is itself a metric worth scraping.
	s.cfg.Obs.Gauge("service.flight_records").Set(int64(s.flight.Len()))
	switch r.URL.Query().Get("format") {
	case "json":
		w.Header().Set("Content-Type", "application/json")
		s.cfg.Obs.Manifest().WriteJSON(w) //nolint:errcheck // response writer errors have no recovery
	case "summary", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.cfg.Obs.WriteSummary(w)
	default:
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		telemetry.WritePrometheus(w, s.cfg.Obs.Manifest()) //nolint:errcheck // response writer errors have no recovery
	}
}

// handleFlight dumps the flight recorder: the last N completed jobs, newest
// first, in the same shape the SIGTERM drain persists to the store sidecar.
func (s *Service) handleFlight(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET only"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.flight.WriteJSON(w) //nolint:errcheck // response writer errors have no recovery
}
