// Package service is difftraced's long-running analysis engine: a bounded
// admission queue in front of the DiffTrace pipeline, backed by the
// crash-safe content-addressed artifact store.
//
// The robustness contract, layer by layer:
//
//   - Admission is bounded. A full queue rejects immediately (the HTTP
//     layer maps this to 429 + Retry-After) instead of queueing unbounded
//     work; a draining service rejects with ErrDraining (503). Nothing is
//     accepted that cannot be accounted for.
//   - Jobs are content-addressed. A job's ID is the pair key — SHA-256
//     over both trace files' raw bytes plus the analysis parameters
//     (worker count deliberately excluded: reports are worker-
//     independent). Resubmitting an identical pair is a cache hit served
//     from the store with no ingestion, NLR, or FCA work; concurrent
//     submissions of the same pair share one in-flight run (store
//     single-flight).
//   - Failures are classified. Transient errors (ErrTransient, anything
//     exposing Temporary() bool) retry with capped exponential backoff
//     and deterministic per-job jitter; everything else — parse errors,
//     deadline expiry, cancellation — fails the job once, with the error
//     preserved verbatim in the job record.
//   - Panics are isolated. A panicking pipeline run becomes a job error
//     via resilience.Guard; the worker, the queue, and every other job
//     keep going.
//   - Shutdown is graceful. Stop() halts admission, lets in-flight jobs
//     drain under the caller's deadline, cancels stragglers past it, and
//     persists still-queued work to queue.json so a restart resumes it.
//
// Every job run carries its own obs.Run; the scrubbed manifest is stored
// next to the report and is byte-identical across worker counts — the
// service inherits the pipeline's schedule-independence guarantee.
package service

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"difftrace/internal/attr"
	"difftrace/internal/cluster"
	"difftrace/internal/core"
	"difftrace/internal/filter"
	"difftrace/internal/obs"
	"difftrace/internal/obs/olog"
	"difftrace/internal/obs/telemetry"
	"difftrace/internal/parlot"
	"difftrace/internal/resilience"
	"difftrace/internal/store"
	"difftrace/internal/trace"
)

// Defaults for Config zero values.
const (
	DefaultQueueDepth  = 64
	DefaultConcurrency = 2
	DefaultMaxAttempts = 3
	DefaultRetryBase   = 100 * time.Millisecond
	DefaultRetryMax    = 5 * time.Second
	DefaultJobTimeout  = 5 * time.Minute
)

// Artifact kinds stored per pair key.
const (
	KindReport   = "report"
	KindManifest = "manifest"
)

// Admission errors. The HTTP layer maps these to status codes.
var (
	// ErrQueueFull: the bounded queue has no room; retry later (429).
	ErrQueueFull = errors.New("service: queue full")
	// ErrDraining: the service is shutting down; no new work (503).
	ErrDraining = errors.New("service: draining, not accepting work")
)

// ErrTransient marks an error as retryable: wrap injection or
// infrastructure failures with it (fmt.Errorf("...: %w", ErrTransient))
// to opt into the retry/backoff path.
var ErrTransient = errors.New("transient")

// Transient reports whether err should be retried: it is ErrTransient,
// or any error in its chain exposes the net-style Temporary() bool
// contract. Context cancellation and deadline expiry are never
// transient — they are verdicts, not weather.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrTransient) {
		return true
	}
	var tmp interface{ Temporary() bool }
	return errors.As(err, &tmp) && tmp.Temporary()
}

// Hooks are test-only fault-injection points, the service-level analog of
// the reader chaos operators. Production configs leave them nil/zero.
type Hooks struct {
	// BeforeAttempt runs at the top of every job attempt; a returned
	// error replaces the attempt's pipeline run (wrap ErrTransient to
	// exercise the retry path).
	BeforeAttempt func(jobID string, attempt int) error
	// HoldJob blocks each pipeline run for this long before analysis
	// (respecting the job ctx) — e2e tests use it to land a SIGTERM
	// mid-job deterministically.
	HoldJob time.Duration
}

// Config sizes one Service.
type Config struct {
	// StoreDir roots the artifact store (and queue.json). Required.
	StoreDir string
	// Workers is the per-job pipeline worker budget (0: GOMAXPROCS).
	Workers int
	// Streaming makes every PLOT1 job run the streaming pipeline by
	// default (traces analyzed without expansion); requests can also opt
	// in individually. Reports are byte-identical either way, so the mode
	// does not split the artifact cache.
	Streaming bool
	// Concurrency is how many jobs run at once (0: DefaultConcurrency).
	Concurrency int
	// QueueDepth bounds queued-but-not-running jobs (0: default).
	QueueDepth int
	// MaxAttempts bounds tries per job including the first (0: default).
	MaxAttempts int
	// RetryBase/RetryMax shape the exponential backoff (0: defaults).
	RetryBase, RetryMax time.Duration
	// JobTimeout is the per-attempt deadline (0: default). Requests may
	// shorten it per job, never lengthen it.
	JobTimeout time.Duration
	// Obs receives service-level metrics (admissions, rejections, cache
	// hits, retries, panics). Nil disables at zero cost.
	Obs *obs.Run
	// Log receives structured JSON log lines with each job's trace ID and
	// stage attached. Nil disables at zero cost.
	Log *olog.Logger
	// FlightSize caps the flight recorder's ring of recently completed
	// jobs (0: telemetry.DefaultFlightSize).
	FlightSize int
	// Hooks inject faults in tests.
	Hooks Hooks
}

func (c *Config) defaults() {
	if c.Concurrency <= 0 {
		c.Concurrency = DefaultConcurrency
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.RetryBase <= 0 {
		c.RetryBase = DefaultRetryBase
	}
	if c.RetryMax <= 0 {
		c.RetryMax = DefaultRetryMax
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = DefaultJobTimeout
	}
}

// DiffRequest is one analysis submission. Paths are server-side; the
// service reads and content-hashes both files at admission, so the job is
// pinned to the bytes that existed then (no TOCTOU between hash and run).
type DiffRequest struct {
	Normal    string `json:"normal"`
	Faulty    string `json:"faulty"`
	Filter    string `json:"filter,omitempty"`    // default 11.mpiall.0K10
	Attr      string `json:"attr,omitempty"`      // default sing.noFreq
	Linkage   string `json:"linkage,omitempty"`   // default ward
	TimeoutMs int    `json:"timeout_ms,omitempty"` // caps at Config.JobTimeout
	// Streaming opts this job into the streaming pipeline (PLOT1 inputs
	// analyzed without expansion). Text inputs fall back to the
	// materialized path; the report is byte-identical in every case.
	Streaming bool `json:"streaming,omitempty"`
	// FindDivergence appends the divergence explorer section (first
	// divergence point per aligned NLR pair, suspect-annotated) to the
	// rendered report. Unlike Streaming it changes the report bytes, so it
	// participates in the artifact cache key.
	FindDivergence bool `json:"find_divergence,omitempty"`
}

func (r *DiffRequest) defaults() {
	if r.Filter == "" {
		r.Filter = "11.mpiall.0K10"
	}
	if r.Attr == "" {
		r.Attr = "sing.noFreq"
	}
	if r.Linkage == "" {
		r.Linkage = "ward"
	}
}

// Job states. The lifecycle is
//
//	queued → running → done
//	                 ↘ failed
//	running → queued            (drain deadline cancelled it; persisted)
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// job is the service's mutable record of one submission.
type job struct {
	id      string
	req     DiffRequest
	traceID obs.TraceID
	prog    *obs.Progress // live telemetry; nil only for interned cache hits
	log     *olog.Logger  // bound to trace_id + job id; nil is off

	// raw bytes pinned at admission; cleared once the job settles.
	normalRaw, faultyRaw []byte
	normalHash, faultyHash string

	mu          sync.Mutex
	state       JobState
	attempts    int
	err         string
	cached      bool
	manifestSHA string // sha256 of the scrubbed manifest artifact
	degraded    int    // degraded-stage count from the last successful run
}

// JobView is the immutable snapshot handed to callers (and serialized by
// the HTTP layer). Progress is attached only while the job runs — it is
// live telemetry (events decoded, events/sec, current stage, peak heap),
// not part of the deterministic result.
type JobView struct {
	ID       string                `json:"id"`
	TraceID  string                `json:"trace_id,omitempty"`
	State    JobState              `json:"state"`
	Attempts int                   `json:"attempts"`
	Cached   bool                  `json:"cached"`
	Error    string                `json:"error,omitempty"`
	Progress *obs.ProgressSnapshot `json:"progress,omitempty"`
}

func (j *job) view() JobView {
	j.mu.Lock()
	v := JobView{ID: j.id, TraceID: string(j.traceID), State: j.state, Attempts: j.attempts, Cached: j.cached, Error: j.err}
	running := j.state == StateRunning
	j.mu.Unlock()
	if running && j.prog != nil {
		snap := j.prog.Snapshot()
		v.Progress = &snap
	}
	return v
}

func (j *job) setState(s JobState) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// Service is one running difftraced engine.
type Service struct {
	cfg    Config
	store  *store.Store
	flight *telemetry.FlightRecorder

	queue    chan *job
	stopOnce sync.Once
	stopCh   chan struct{}
	cancel   context.CancelFunc // cancels every in-flight job ctx
	wg       sync.WaitGroup

	draining atomic.Bool
	running  atomic.Int64 // jobs currently inside runJob

	mu   sync.Mutex
	jobs map[string]*job
}

// flightSidecar names the store sidecar the drain-time flight dump uses.
const flightSidecar = "flight"

// queueFile is where Stop persists unfinished work.
func queueFile(storeDir string) string { return filepath.Join(storeDir, "queue.json") }

// New opens the store (running its recovery scan), restores any queue
// persisted by a previous shutdown, and starts the worker loops. ctx
// bounds every job the service will ever run: cancelling it aborts
// in-flight work. The returned IngestReport is the store recovery
// accounting (what a crash cost).
func New(ctx context.Context, cfg Config) (*Service, *resilience.IngestReport, error) {
	cfg.defaults()
	if cfg.StoreDir == "" {
		return nil, nil, fmt.Errorf("service: Config.StoreDir is required")
	}
	st, recovery, err := store.Open(cfg.StoreDir)
	if err != nil {
		return nil, nil, err
	}
	runCtx, cancel := context.WithCancel(ctx)
	s := &Service{
		cfg:    cfg,
		store:  st,
		flight: telemetry.NewFlightRecorder(cfg.FlightSize),
		queue:  make(chan *job, cfg.QueueDepth),
		stopCh: make(chan struct{}),
		cancel: cancel,
		jobs:   make(map[string]*job),
	}
	cfg.Obs.Counter("service.store_quarantined").Add(int64(recovery.Quarantined()))
	// A previous drain's flight dump survives restarts: operators can still
	// ask "what ran before the crash". A missing or corrupt sidecar (the
	// store quarantines those) just means an empty recorder.
	if blob, ok, err := st.GetSidecar(flightSidecar); err == nil && ok {
		if rerr := s.flight.Restore(blob); rerr != nil {
			cfg.Log.Warn("flight restore failed", olog.Err(rerr))
		}
	}
	cfg.Log.Info("service starting",
		olog.Str("store", cfg.StoreDir),
		olog.Int("concurrency", cfg.Concurrency),
		olog.Int("queue_depth", cfg.QueueDepth),
		olog.Int("workers", cfg.Workers),
		olog.Int("flight_restored", s.flight.Len()),
		olog.Int("store_quarantined", recovery.Quarantined()))
	for i := 0; i < cfg.Concurrency; i++ {
		s.wg.Add(1)
		//lint:allow nakedgoroutine worker loop is bounded by Config.Concurrency and joined by Stop via s.wg
		go s.workerLoop(runCtx)
	}
	if err := s.restoreQueue(); err != nil {
		return nil, nil, err
	}
	return s, recovery, nil
}

// Store exposes the underlying artifact store (read paths for the HTTP
// layer and tests).
func (s *Service) Store() *store.Store { return s.store }

// Flight exposes the flight recorder (GET /debug/flight and tests).
func (s *Service) Flight() *telemetry.FlightRecorder { return s.flight }

// QueueDepth reports how many jobs are queued but not yet claimed.
func (s *Service) QueueDepth() int { return len(s.queue) }

// Draining reports whether Stop has begun.
func (s *Service) Draining() bool { return s.draining.Load() }

// RetryAfterSeconds is the hint attached to queue-full rejections.
func (s *Service) RetryAfterSeconds() int {
	sec := int((s.cfg.JobTimeout + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	if sec > 30 {
		sec = 30
	}
	return sec
}

// Job returns a snapshot of the job with the given ID.
func (s *Service) Job(id string) (JobView, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// Artifacts returns the stored report and scrubbed manifest for a done
// job. Corrupt artifacts are quarantined by the store and read as absent.
func (s *Service) Artifacts(id string) (report, manifest []byte, ok bool) {
	rep, repOK, err := s.store.Get(id, KindReport, nil)
	if err != nil || !repOK {
		return nil, nil, false
	}
	man, manOK, err := s.store.Get(id, KindManifest, nil)
	if err != nil || !manOK {
		return nil, nil, false
	}
	return rep, man, true
}

// Submit admits one diff request. It validates the parameters, hashes
// both trace files, and either (a) returns the already-done cached job,
// (b) joins an existing queued/running job for the same pair, or (c)
// enqueues a new job. ErrQueueFull and ErrDraining reject; anything else
// returned is a validation error (the request itself is bad).
func (s *Service) Submit(req DiffRequest) (JobView, error) {
	if s.draining.Load() {
		s.cfg.Obs.Counter("service.rejected_draining").Add(1)
		s.cfg.Log.Warn("submission rejected: draining")
		return JobView{}, ErrDraining
	}
	req.defaults()
	if req.Normal == "" || req.Faulty == "" {
		return JobView{}, fmt.Errorf("service: normal and faulty trace paths are required")
	}
	if _, err := filter.ParseSpec(req.Filter); err != nil {
		return JobView{}, fmt.Errorf("service: %w", err)
	}
	if _, err := attr.ParseConfig(req.Attr); err != nil {
		return JobView{}, fmt.Errorf("service: %w", err)
	}
	if _, err := cluster.ParseMethod(req.Linkage); err != nil {
		return JobView{}, fmt.Errorf("service: %w", err)
	}
	normalRaw, err := os.ReadFile(req.Normal)
	if err != nil {
		return JobView{}, fmt.Errorf("service: normal trace: %w", err)
	}
	faultyRaw, err := os.ReadFile(req.Faulty)
	if err != nil {
		return JobView{}, fmt.Errorf("service: faulty trace: %w", err)
	}
	nh, fh := store.Key(normalRaw), store.Key(faultyRaw)
	// Workers deliberately excluded: the pipeline's output is
	// schedule-independent, so worker count must not split the cache.
	// Streaming is excluded on the same precedent — the differential
	// battery proves the report bytes are mode-independent. (The stored
	// manifest records whichever mode actually produced the artifacts.)
	// FindDivergence IS included: it appends a section to the report, so
	// the two variants are distinct artifacts.
	id := store.PairKey(nh, fh, req.Filter, req.Attr, req.Linkage,
		strconv.FormatBool(req.FindDivergence))

	// The trace ID is minted at admission — before the cache check — so
	// even a cache-hit submission is correlatable across logs and flight.
	tid := obs.NewTraceID()

	// Cache hit: both artifacts already stored and intact — the job is
	// done before it starts, no ingestion/NLR/FCA work at all.
	if s.store.Has(id, KindReport) && s.store.Has(id, KindManifest) {
		s.cfg.Obs.Counter("service.cache_hits").Add(1)
		j := s.internJob(id, req, nil, nil, nh, fh)
		j.mu.Lock()
		// First sight of this pair since boot: adopt the submission's trace
		// ID and give the hit a flight record; later resubmissions reuse
		// the job's identity (one completion, one record).
		fresh := j.traceID.IsZero()
		if fresh {
			j.traceID = tid
			j.log = s.jobLogger(tid, id)
		}
		if j.state != StateRunning && j.state != StateQueued {
			j.state, j.cached = StateDone, true
		}
		jlog := j.log
		j.mu.Unlock()
		jlog.Info("cache hit", olog.Bool("fresh", fresh))
		if fresh {
			s.flight.Record(telemetry.JobRecord{
				TraceID: string(tid), JobID: id, Outcome: string(StateDone), Cached: true,
			})
		}
		return j.view(), nil
	}

	s.mu.Lock()
	if j, exists := s.jobs[id]; exists {
		st := j.view().State
		if st == StateQueued || st == StateRunning {
			// Same pair already on its way: share that run.
			s.mu.Unlock()
			s.cfg.Obs.Counter("service.dedup_joined").Add(1)
			j.log.Info("submission joined in-flight job")
			return j.view(), nil
		}
		// done (stale artifacts?) or failed: fall through and requeue.
	}
	j := &job{
		id: id, req: req, state: StateQueued,
		traceID: tid, prog: obs.NewProgress(), log: s.jobLogger(tid, id),
		normalRaw: normalRaw, faultyRaw: faultyRaw,
		normalHash: nh, faultyHash: fh,
	}
	select {
	case s.queue <- j:
		s.jobs[id] = j
		s.mu.Unlock()
		s.cfg.Obs.Counter("service.admitted").Add(1)
		s.cfg.Obs.Gauge("service.queue_len").Set(int64(len(s.queue)))
		j.log.Info("job admitted",
			olog.Str("filter", req.Filter),
			olog.Str("attr", req.Attr),
			olog.Str("linkage", req.Linkage),
			olog.Bool("streaming", req.Streaming || s.cfg.Streaming),
			olog.Int("queue_len", len(s.queue)))
		return j.view(), nil
	default:
		s.mu.Unlock()
		s.cfg.Obs.Counter("service.rejected_full").Add(1)
		s.cfg.Log.Warn("submission rejected: queue full", olog.Str("trace_id", string(tid)))
		return JobView{}, ErrQueueFull
	}
}

// jobLogger binds the service logger to one job's correlation keys.
func (s *Service) jobLogger(tid obs.TraceID, id string) *olog.Logger {
	return s.cfg.Log.With(olog.Str("trace_id", string(tid)), olog.Str("job", id))
}

// internJob records a job reference for ID lookups without enqueueing
// (cache-hit path).
func (s *Service) internJob(id string, req DiffRequest, nraw, fraw []byte, nh, fh string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j
	}
	j := &job{id: id, req: req, state: StateDone, normalRaw: nraw, faultyRaw: fraw, normalHash: nh, faultyHash: fh}
	s.jobs[id] = j
	return j
}

// workerLoop claims queued jobs until Stop (or ctx cancellation).
func (s *Service) workerLoop(ctx context.Context) {
	defer s.wg.Done()
	for {
		// Stop takes priority over a non-empty queue: once draining, the
		// queued backlog is persisted for the next boot, not raced
		// against the drain deadline.
		select {
		case <-s.stopCh:
			return
		case <-ctx.Done():
			return
		default:
		}
		select {
		case <-s.stopCh:
			return
		case <-ctx.Done():
			return
		case j := <-s.queue:
			s.cfg.Obs.Gauge("service.queue_len").Set(int64(len(s.queue)))
			s.runJob(ctx, j)
		}
	}
}

// runJob drives one job through its attempts. The job's trace ID and live
// Progress ride the context from here down through core, pool, and the
// readers — every layer below reads them with zero configuration.
func (s *Service) runJob(ctx context.Context, j *job) {
	j.setState(StateRunning)
	s.cfg.Obs.Gauge("service.jobs_running").Set(s.running.Add(1))
	defer func() {
		s.cfg.Obs.Gauge("service.jobs_running").Set(s.running.Add(-1))
	}()
	j.prog.MarkStarted()
	jctx := obs.WithProgress(obs.WithTraceID(ctx, j.traceID), j.prog)
	timeout := s.cfg.JobTimeout
	if j.req.TimeoutMs > 0 {
		if d := time.Duration(j.req.TimeoutMs) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	var lastErr error
	for attempt := 1; attempt <= s.cfg.MaxAttempts; attempt++ {
		j.mu.Lock()
		j.attempts = attempt
		j.mu.Unlock()
		j.log.Info("attempt starting", olog.Int("attempt", attempt))
		lastErr = s.attempt(jctx, j, attempt, timeout)
		if lastErr == nil {
			s.settle(j, StateDone, "")
			s.cfg.Obs.Counter("service.jobs_done").Add(1)
			return
		}
		if ctx.Err() != nil && s.draining.Load() {
			// The drain deadline cancelled this run, not the job's own
			// deadline: put it back in queued state so Stop persists it
			// for the next boot.
			j.log.Warn("drain cancelled attempt; job requeued for next boot")
			s.settle(j, StateQueued, "")
			return
		}
		if !Transient(lastErr) || attempt == s.cfg.MaxAttempts {
			break
		}
		s.cfg.Obs.Counter("service.retries").Add(1)
		j.log.Warn("transient failure; backing off", olog.Int("attempt", attempt), olog.Err(lastErr))
		if !s.backoff(ctx, j.id, attempt) {
			break // shutdown or cancellation interrupted the wait
		}
	}
	s.settle(j, StateFailed, lastErr.Error())
	s.cfg.Obs.Counter("service.jobs_failed").Add(1)
}

// settle finalizes a job's state and, for terminal states, releases the
// pinned input bytes, folds the job's telemetry into the service registry,
// records it in the flight ring, and logs the verdict.
func (s *Service) settle(j *job, state JobState, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.err = errMsg
	terminal := state == StateDone || state == StateFailed
	if terminal {
		j.normalRaw, j.faultyRaw = nil, nil
	}
	attempts, manifestSHA, degraded := j.attempts, j.manifestSHA, j.degraded
	j.mu.Unlock()
	if !terminal {
		return
	}
	snap := j.prog.Snapshot()
	s.cfg.Obs.Histogram("service.job_run_ms").Observe(snap.RunMs)
	s.cfg.Obs.Histogram("service.job_queued_ms").Observe(snap.QueuedMs)
	s.cfg.Obs.Histogram("service.job_events").Observe(snap.Events)
	if pk := int64(snap.PeakHeapBytes); pk > s.cfg.Obs.Gauge("service.heap_peak_bytes").Value() {
		s.cfg.Obs.Gauge("service.heap_peak_bytes").Set(pk)
	}
	s.flight.Record(telemetry.JobRecord{
		TraceID:        string(j.traceID),
		JobID:          j.id,
		Outcome:        string(state),
		Attempts:       attempts,
		Error:          errMsg,
		ManifestSHA256: manifestSHA,
		Stage:          snap.Stage,
		Events:         snap.Events,
		EventsPerSec:   snap.EventsPerSec,
		QueuedMs:       snap.QueuedMs,
		RunMs:          snap.RunMs,
		PeakHeapBytes:  snap.PeakHeapBytes,
		Degraded:       degraded,
	})
	if state == StateDone {
		j.log.Info("job done",
			olog.Int("attempts", attempts),
			olog.Int64("run_ms", snap.RunMs),
			olog.Int64("events", snap.Events),
			olog.Int("degraded", degraded),
			olog.Uint64("peak_heap_bytes", snap.PeakHeapBytes),
			olog.Str("manifest_sha256", manifestSHA))
	} else {
		j.log.Error("job failed",
			olog.Int("attempts", attempts),
			olog.Int64("run_ms", snap.RunMs),
			olog.Str("reason", errMsg))
	}
}

// backoff sleeps the capped-exponential, deterministically-jittered delay
// before the next attempt. Returns false if shutdown or ctx cancellation
// interrupted the wait.
func (s *Service) backoff(ctx context.Context, jobID string, attempt int) bool {
	d := s.cfg.RetryBase << uint(attempt-1)
	if d > s.cfg.RetryMax || d <= 0 {
		d = s.cfg.RetryMax
	}
	// Jitter derives from the job ID and attempt — not from a PRNG or the
	// clock — so a retry schedule is reproducible for a given job yet
	// decorrelated across jobs (no thundering herd after a shared
	// transient).
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s/%d", jobID, attempt)))
	jitter := time.Duration(sum[0]) * d / (4 * 256) // up to +25%
	//lint:allow wallclock retry pacing is operational, not analysis: no trace or manifest bytes depend on when the timer fires
	t := time.NewTimer(d + jitter)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.stopCh:
		return false
	case <-ctx.Done():
		return false
	}
}

// attempt runs one pipeline pass for the job under its deadline, with
// panic isolation and single-flight dedup.
func (s *Service) attempt(ctx context.Context, j *job, attempt int, timeout time.Duration) error {
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	// Single-flight: concurrent attempts for the same pair key share one
	// run. The winner persists the artifacts; followers just observe the
	// error (artifacts are read back from the store either way). The
	// fault-injection hooks run inside the panic guard so injected panics
	// exercise the same isolation path as real ones.
	_, shared, err := s.store.Do(j.id, func() (any, error) {
		serr := resilience.Guard("service.run", j.id, func() error {
			if hook := s.cfg.Hooks.BeforeAttempt; hook != nil {
				if herr := hook(j.id, attempt); herr != nil {
					return herr
				}
			}
			if hold := s.cfg.Hooks.HoldJob; hold > 0 {
				//lint:allow wallclock fault-injection hook: the hold exists to trigger deadline paths in tests
				t := time.NewTimer(hold)
				select {
				case <-t.C:
				case <-actx.Done():
					t.Stop()
					return fmt.Errorf("service: job %s held past its deadline: %w", j.id, actx.Err())
				}
			}
			return s.pipeline(actx, j)
		})
		if serr != nil {
			if strings.HasPrefix(serr.Err.Error(), "panic:") {
				// Guard wraps recovered panics with this prefix.
				s.cfg.Obs.Counter("service.panics").Add(1)
			}
			return nil, serr
		}
		return nil, nil
	})
	if shared {
		s.cfg.Obs.Counter("service.dedup_shared").Add(1)
	}
	return err
}

// pipeline is one full analysis run: parse both pinned inputs, diff,
// render, persist. Always lenient + resilient — a service salvages what
// it can and records what it could not — while cancellation still aborts.
func (s *Service) pipeline(ctx context.Context, j *job) error {
	run := obs.NewRun("difftraced")
	run.SetTraceID(obs.TraceIDFrom(ctx))
	prog := obs.ProgressFrom(ctx)
	// The sampler feeds the job's live peak-heap gauge; the service-level
	// high-water gauge is folded at settle time from the same snapshot.
	hs := obs.StartHeapSamplerInto(50*time.Millisecond, prog)
	defer hs.Stop()
	run.SetConfig("normal_sha256", j.normalHash)
	run.SetConfig("faulty_sha256", j.faultyHash)
	run.SetConfig("filter", j.req.Filter)
	run.SetConfig("attr", j.req.Attr)
	run.SetConfig("linkage", j.req.Linkage)
	run.SetConfig("lenient", "true")

	j.mu.Lock()
	normalRaw, faultyRaw := j.normalRaw, j.faultyRaw
	j.mu.Unlock()
	if normalRaw == nil || faultyRaw == nil {
		// Restored-from-queue jobs re-read their inputs lazily.
		var err error
		if normalRaw, err = os.ReadFile(j.req.Normal); err != nil {
			return fmt.Errorf("service: normal trace: %w", err)
		}
		if faultyRaw, err = os.ReadFile(j.req.Faulty); err != nil {
			return fmt.Errorf("service: faulty trace: %w", err)
		}
	}

	// Streaming applies when requested (per job or service-wide) and both
	// inputs are PLOT1 — text traces have no compressed representation to
	// stream, so they quietly run the materialized path, which produces
	// the same bytes anyway.
	streaming := (j.req.Streaming || s.cfg.Streaming) && isPLOT1(normalRaw) && isPLOT1(faultyRaw)
	run.SetConfig("stream", fmt.Sprintf("%t", streaming))
	run.SetConfig("find_divergence", fmt.Sprintf("%t", j.req.FindDivergence))

	reg := trace.NewRegistry()
	opts := trace.ReadOptions{Mode: trace.Lenient, Obs: run}
	var (
		normal, faulty   *trace.TraceSet
		snormal, sfaulty *parlot.StreamSet
		nrep, frep       *resilience.IngestReport
		err              error
	)
	prog.SetStage("ingest")
	sp := run.StartSpan("ingest")
	if streaming {
		snormal, nrep, err = parlot.ReadStreamSetContext(ctx, bytes.NewReader(normalRaw), reg, opts)
	} else {
		normal, nrep, err = readSetBytes(ctx, normalRaw, reg, opts)
	}
	if err != nil {
		return fmt.Errorf("service: normal trace: %w", err)
	}
	if streaming {
		sfaulty, frep, err = parlot.ReadStreamSetContext(ctx, bytes.NewReader(faultyRaw), reg, opts)
	} else {
		faulty, frep, err = readSetBytes(ctx, faultyRaw, reg, opts)
	}
	if err != nil {
		return fmt.Errorf("service: faulty trace: %w", err)
	}
	sp.End()
	nrep.Source, frep.Source = "normal", "faulty"
	run.AddIngest(ingestTotals(nrep))
	run.AddIngest(ingestTotals(frep))

	flt, err := filter.ParseSpec(j.req.Filter)
	if err != nil {
		return err
	}
	ac, err := attr.ParseConfig(j.req.Attr)
	if err != nil {
		return err
	}
	linkage, err := cluster.ParseMethod(j.req.Linkage)
	if err != nil {
		return err
	}
	ccfg := core.Config{
		Filter: flt, Attr: ac, Linkage: linkage,
		Resilient: true, Workers: s.cfg.Workers, Obs: run,
	}
	var rep *core.Report
	if streaming {
		rep, err = core.DiffRunStreamContext(ctx, snormal, sfaulty, ccfg)
	} else {
		rep, err = core.DiffRunContext(ctx, normal, faulty, ccfg)
	}
	if err != nil {
		return err
	}

	prog.SetStage("render")
	var report bytes.Buffer
	writeIngestSection(&report, nrep, frep)
	for _, e := range rep.Degraded {
		fmt.Fprintf(&report, "degraded: %s\n", e)
	}
	if err := rep.WriteReport(&report, core.RenderOptions{TopK: 6}); err != nil {
		return err
	}
	if j.req.FindDivergence {
		div, derr := rep.FindDivergenceContext(ctx)
		if derr != nil {
			return derr
		}
		report.WriteByte('\n')
		if err := div.Render(&report); err != nil {
			return err
		}
	}

	manifest := run.Manifest()
	obs.Scrub(manifest)
	var manifestJSON bytes.Buffer
	if err := manifest.WriteJSON(&manifestJSON); err != nil {
		return err
	}
	// The flight record carries the scrubbed artifact's digest so an operator
	// can tie a flight entry to the exact stored manifest bytes.
	sum := sha256.Sum256(manifestJSON.Bytes())
	j.mu.Lock()
	j.manifestSHA = fmt.Sprintf("%x", sum)
	j.degraded = len(rep.Degraded)
	j.mu.Unlock()

	prog.SetStage("persist")
	if err := s.store.Put(j.id, KindReport, report.Bytes()); err != nil {
		return err
	}
	return s.store.Put(j.id, KindManifest, manifestJSON.Bytes())
}

// writeIngestSection prepends the degradation record to the report so a
// salvaged run is never mistaken for a clean one.
func writeIngestSection(w *bytes.Buffer, reps ...*resilience.IngestReport) {
	for _, rep := range reps {
		if rep == nil || rep.Clean() {
			continue
		}
		fmt.Fprint(w, "ingest "+rep.RenderTable())
	}
}

// isPLOT1 reports whether raw carries the binary trace magic.
func isPLOT1(raw []byte) bool {
	return len(raw) >= 5 && string(raw[:5]) == "PLOT1"
}

// readSetBytes parses raw trace bytes in either format, sniffing the
// PLOT1 magic.
func readSetBytes(ctx context.Context, raw []byte, reg *trace.Registry, opts trace.ReadOptions) (*trace.TraceSet, *resilience.IngestReport, error) {
	br := bufio.NewReader(bytes.NewReader(raw))
	if magic, err := br.Peek(5); err == nil && string(magic) == "PLOT1" {
		return parlot.ReadSetBinaryContext(ctx, br, reg, opts)
	}
	return trace.ReadSetTextContext(ctx, br, reg, opts)
}

// ingestTotals folds an IngestReport into the manifest's ingestion entry
// (the same conversion cmd/difftrace performs; obs stays dependency-free).
func ingestTotals(rep *resilience.IngestReport) obs.Ingest {
	if rep == nil {
		return obs.Ingest{}
	}
	return obs.Ingest{
		Source:            rep.Source,
		Lenient:           rep.Lenient,
		EventsKept:        rep.EventsKept,
		EventsDropped:     rep.EventsDropped,
		EventsSynthesized: rep.EventsSynthesized,
		TracesAffected:    len(rep.Records()),
		Quarantined:       rep.Quarantined(),
	}
}

// persistedQueue is queue.json's schema.
type persistedQueue struct {
	Version int           `json:"version"`
	Jobs    []DiffRequest `json:"jobs"`
}

// Stop shuts the service down gracefully: admission stops (Submit returns
// ErrDraining), workers finish their current jobs under ctx's deadline,
// stragglers past the deadline are cancelled, and every job still queued
// (or cancelled mid-run by the deadline) is persisted to queue.json for
// the next boot. Returns the number of jobs persisted.
func (s *Service) Stop(ctx context.Context) (int, error) {
	s.draining.Store(true)
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.cfg.Log.Info("drain starting",
		olog.Int("queue_len", len(s.queue)),
		olog.Int64("running", s.running.Load()))

	done := make(chan struct{})
	//lint:allow nakedgoroutine bounded: wg.Wait returns once the Concurrency workers exit; the goroutine is joined via done before Stop returns on the happy path and leaks at most until process exit on the deadline path
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Drain deadline expired: cancel in-flight job contexts and wait
		// for the (now promptly-aborting) workers.
		s.cfg.Log.Warn("drain deadline expired; cancelling in-flight jobs")
		s.cancel()
		<-done
	}
	s.cancel()

	// The flight dump is the drain's black box: everything that completed
	// recently, persisted through the store's self-verifying sidecar so the
	// next boot (or a post-mortem) can read it back. A dump failure must not
	// fail the drain — it is telemetry, not state.
	var flightBuf bytes.Buffer
	if err := s.flight.WriteJSON(&flightBuf); err == nil {
		if perr := s.store.PutSidecar(flightSidecar, flightBuf.Bytes()); perr != nil {
			s.cfg.Log.Warn("flight dump failed", olog.Err(perr))
		} else {
			s.cfg.Log.Info("flight dump persisted", olog.Int("records", s.flight.Len()))
		}
	}

	// Collect unfinished work: still-buffered queue entries plus jobs a
	// cancelled run pushed back to queued.
	var pending []DiffRequest
	seen := map[string]bool{}
	for {
		select {
		case j := <-s.queue:
			j.setState(StateQueued)
			pending = append(pending, j.req)
			seen[j.id] = true
			continue
		default:
		}
		break
	}
	s.mu.Lock()
	for id, j := range s.jobs {
		if !seen[id] && j.view().State == StateQueued {
			pending = append(pending, j.req)
			seen[id] = true
		}
	}
	s.mu.Unlock()
	sort.Slice(pending, func(i, k int) bool {
		return pending[i].Normal+pending[i].Faulty < pending[k].Normal+pending[k].Faulty
	})
	if len(pending) == 0 {
		os.Remove(queueFile(s.cfg.StoreDir))
		s.cfg.Log.Info("drain complete", olog.Int("persisted", 0))
		return 0, nil
	}
	blob, err := json.MarshalIndent(persistedQueue{Version: 1, Jobs: pending}, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("service: persist queue: %w", err)
	}
	tmp := queueFile(s.cfg.StoreDir) + ".tmp"
	if err := os.WriteFile(tmp, append(blob, '\n'), 0o644); err != nil {
		return 0, fmt.Errorf("service: persist queue: %w", err)
	}
	if err := os.Rename(tmp, queueFile(s.cfg.StoreDir)); err != nil {
		return 0, fmt.Errorf("service: persist queue: %w", err)
	}
	s.cfg.Log.Info("drain complete", olog.Int("persisted", len(pending)))
	return len(pending), nil
}

// restoreQueue resubmits work persisted by a previous shutdown. Requests
// whose inputs vanished in between fail admission individually; the rest
// still restore.
func (s *Service) restoreQueue() error {
	path := queueFile(s.cfg.StoreDir)
	blob, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("service: restore queue: %w", err)
	}
	var pq persistedQueue
	if err := json.Unmarshal(blob, &pq); err != nil {
		// A torn queue.json must not brick the boot: quarantine it
		// in-place by renaming, and start empty.
		os.Rename(path, path+".corrupt")
		s.cfg.Obs.Counter("service.queue_restore_corrupt").Add(1)
		s.cfg.Log.Warn("queue restore: corrupt queue.json quarantined", olog.Str("path", path+".corrupt"))
		return nil
	}
	os.Remove(path)
	restored := 0
	for _, req := range pq.Jobs {
		if _, err := s.Submit(req); err != nil && !errors.Is(err, ErrQueueFull) {
			s.cfg.Obs.Counter("service.queue_restore_failed").Add(1)
			s.cfg.Log.Warn("queue restore: submission failed",
				olog.Str("normal", req.Normal), olog.Str("faulty", req.Faulty), olog.Err(err))
			continue
		}
		restored++
		s.cfg.Obs.Counter("service.queue_restored").Add(1)
	}
	if restored > 0 {
		s.cfg.Log.Info("queue restored", olog.Int("jobs", restored))
	}
	return nil
}

// String summarizes the service configuration (logs, /healthz).
func (s *Service) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "difftraced store=%s concurrency=%d queue=%d workers=%d",
		s.cfg.StoreDir, s.cfg.Concurrency, s.cfg.QueueDepth, s.cfg.Workers)
	return b.String()
}
