package service

import (
	"strings"
	"testing"
)

// TestFindDivergenceOption: the find_divergence report option appends the
// divergence explorer section, splits the artifact cache (same pair, with
// vs without, are distinct jobs), and caches like any other keyed option
// (resubmitting the same request is a hit).
func TestFindDivergenceOption(t *testing.T) {
	svc := newTestService(t, Config{})
	normal, faulty := writeTracePair(t, t.TempDir(), 0)

	plain, err := svc.Submit(DiffRequest{Normal: normal, Faulty: faulty})
	if err != nil {
		t.Fatal(err)
	}
	withDiv, err := svc.Submit(DiffRequest{Normal: normal, Faulty: faulty, FindDivergence: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.ID == withDiv.ID {
		t.Fatal("find_divergence did not split the cache key: same job ID for both variants")
	}
	if v := waitState(t, svc, plain.ID); v.State != StateDone {
		t.Fatalf("plain job failed: %+v", v)
	}
	if v := waitState(t, svc, withDiv.ID); v.State != StateDone {
		t.Fatalf("find_divergence job failed: %+v", v)
	}

	plainRep, _, ok := svc.Artifacts(plain.ID)
	if !ok {
		t.Fatal("plain report missing")
	}
	divRep, _, ok := svc.Artifacts(withDiv.ID)
	if !ok {
		t.Fatal("find_divergence report missing")
	}
	if strings.Contains(string(plainRep), "divergence explorer") {
		t.Fatal("plain report unexpectedly carries the divergence section")
	}
	if !strings.Contains(string(divRep), "divergence explorer") {
		t.Fatalf("find_divergence report missing the divergence section:\n%s", divRep)
	}
	// The section must actually walk the pair: these fixtures differ, so
	// at least one level reports diverging objects.
	if !strings.Contains(string(divRep), "objects diverge") {
		t.Fatalf("divergence section reports nothing on a differing pair:\n%s", divRep)
	}

	// Resubmission of the keyed variant is a cache hit — done immediately.
	again, err := svc.Submit(DiffRequest{Normal: normal, Faulty: faulty, FindDivergence: true})
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != withDiv.ID {
		t.Fatalf("resubmission minted a new job: %s vs %s", again.ID, withDiv.ID)
	}
}
