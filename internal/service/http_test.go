package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"difftrace/internal/obs"
	"difftrace/internal/obs/telemetry"
)

func postDiff(t *testing.T, ts *httptest.Server, req DiffRequest) (*http.Response, jobResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/diff", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr jobResponse
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, jr
}

func getJob(t *testing.T, ts *httptest.Server, id string) (*http.Response, jobResponse) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr jobResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, jr
}

func waitJobHTTP(t *testing.T, ts *httptest.Server, id string) jobResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, jr := getJob(t, ts, id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s → %d", id, resp.StatusCode)
		}
		if jr.State == StateDone || jr.State == StateFailed {
			return jr
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never settled over HTTP: %+v", id, jr.JobView)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHTTPSubmitPollFetch(t *testing.T) {
	svc := newTestService(t, Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	normal, faulty := writeTracePair(t, t.TempDir(), 0)

	resp, jr := postDiff(t, ts, DiffRequest{Normal: normal, Faulty: faulty})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status = %d, want 202", resp.StatusCode)
	}
	if jr.ID == "" || jr.Cached {
		t.Fatalf("bad accepted view: %+v", jr.JobView)
	}
	done := waitJobHTTP(t, ts, jr.ID)
	if done.State != StateDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	if !strings.Contains(done.Report, "DiffTrace report") {
		t.Fatalf("report missing over HTTP:\n%s", done.Report)
	}
	if len(done.Manifest) == 0 || !bytes.Contains(done.Manifest, []byte(`"tool": "difftraced"`)) {
		t.Fatalf("manifest missing over HTTP: %s", done.Manifest)
	}

	// Resubmission over HTTP: 200 + cached view with artifacts inline.
	resp2, jr2 := postDiff(t, ts, DiffRequest{Normal: normal, Faulty: faulty})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cached POST status = %d, want 200", resp2.StatusCode)
	}
	if !jr2.Cached || jr2.Report != done.Report {
		t.Fatalf("cached response mismatch: cached=%v", jr2.Cached)
	}
}

func TestHTTPQueueFull429(t *testing.T) {
	svc := newTestService(t, Config{
		Concurrency: 1, QueueDepth: 1,
		Hooks: Hooks{HoldJob: 30 * time.Second},
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	dir := t.TempDir()

	n0, f0 := writeTracePair(t, dir, 0)
	_, jr0 := postDiff(t, ts, DiffRequest{Normal: n0, Faulty: f0})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := svc.Job(jr0.ID); v.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never claimed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	n1, f1 := writeTracePair(t, dir, 1)
	if resp, _ := postDiff(t, ts, DiffRequest{Normal: n1, Faulty: f1}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second POST status = %d, want 202", resp.StatusCode)
	}
	n2, f2 := writeTracePair(t, dir, 2)
	resp, _ := postDiff(t, ts, DiffRequest{Normal: n2, Faulty: f2})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow POST status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestHTTPDraining503(t *testing.T) {
	svc := newTestService(t, Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy /healthz = %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := svc.Stop(ctx); err != nil {
		t.Fatal(err)
	}

	normal, faulty := writeTracePair(t, t.TempDir(), 0)
	dresp, _ := postDiff(t, ts, DiffRequest{Normal: normal, Faulty: faulty})
	if dresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining POST = %d, want 503", dresp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz = %d, want 503", hresp.StatusCode)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	svc := newTestService(t, Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/diff", "application/json", strings.NewReader("{torn"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d, want 400", resp.StatusCode)
	}
	if r2, _ := postDiff(t, ts, DiffRequest{Normal: "/does/not/exist", Faulty: "/nope"}); r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing file = %d, want 400", r2.StatusCode)
	}
	r3, err := http.Get(ts.URL + "/v1/diff")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/diff = %d, want 405", r3.StatusCode)
	}
	r4, jr := getJob(t, ts, "no-such-job")
	if r4.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404 (%+v)", r4.StatusCode, jr)
	}
}

func TestHTTPMetrics(t *testing.T) {
	svc := newTestService(t, Config{Obs: newObsForTest()})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	normal, faulty := writeTracePair(t, t.TempDir(), 0)
	_, jr := postDiff(t, ts, DiffRequest{Normal: normal, Faulty: faulty})
	waitJobHTTP(t, ts, jr.ID)

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d", path, resp.StatusCode)
		}
		return buf.String(), resp.Header.Get("Content-Type")
	}

	// Default: Prometheus text exposition, and a valid document at that.
	prom, ctype := get("/metrics")
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Fatalf("/metrics content type = %q, want Prometheus text", ctype)
	}
	if !strings.Contains(prom, "difftrace_service_admitted_total 1") {
		t.Fatalf("/metrics missing admission counter:\n%s", prom)
	}
	if err := telemetry.ValidateText(strings.NewReader(prom)); err != nil {
		t.Fatalf("/metrics is not valid exposition: %v\n%s", err, prom)
	}

	// ?format=json: the live manifest, unscrubbed, as JSON.
	jsonBody, ctype := get("/metrics?format=json")
	if !strings.Contains(ctype, "application/json") {
		t.Fatalf("/metrics?format=json content type = %q", ctype)
	}
	var m obs.Manifest
	if err := json.Unmarshal([]byte(jsonBody), &m); err != nil {
		t.Fatalf("/metrics?format=json is not a manifest: %v", err)
	}
	if m.Counters["service.admitted"] != 1 {
		t.Fatalf("manifest admitted = %d, want 1", m.Counters["service.admitted"])
	}

	// ?format=summary: the original human-readable table.
	summary, _ := get("/metrics?format=summary")
	if !strings.Contains(summary, "service.admitted") {
		t.Fatalf("/metrics?format=summary missing admission counter:\n%s", summary)
	}
}

// TestHTTPConcurrentSamePairSharesOneRun floods the API with the same
// pair: one run happens, everyone converges on the same job ID.
func TestHTTPConcurrentSamePairSharesOneRun(t *testing.T) {
	obsRun := newObsForTest()
	svc := newTestService(t, Config{Obs: obsRun, Concurrency: 4})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	normal, faulty := writeTracePair(t, t.TempDir(), 0)
	req := DiffRequest{Normal: normal, Faulty: faulty}

	const clients = 8
	ids := make(chan string, clients)
	for i := 0; i < clients; i++ {
		go func() {
			_, jr := postDiff(t, ts, req)
			ids <- jr.ID
		}()
	}
	first := <-ids
	for i := 1; i < clients; i++ {
		if id := <-ids; id != first {
			t.Fatalf("same pair produced divergent job IDs: %s vs %s", first, id)
		}
	}
	done := waitJobHTTP(t, ts, first)
	if done.State != StateDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	if got := obsRun.Counter("service.admitted").Value(); got != 1 {
		t.Fatalf("admitted = %d, want exactly 1 run for %d clients", got, clients)
	}
}

func newObsForTest() *obs.Run { return obs.NewRun("test") }
