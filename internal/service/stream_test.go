package service

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

// writeBinaryPair converts the checked-in ILCS fixture pair to PLOT1 —
// the format the streaming path consumes.
func writeBinaryPair(t *testing.T, dir string) (normal, faulty string) {
	t.Helper()
	textNormal, textFaulty := fixturePair(t)
	conv := func(src, name string) string {
		f, err := os.Open(src)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		set, err := trace.ReadSetText(f, trace.NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := parlot.WriteSetBinary(&buf, set); err != nil {
			t.Fatal(err)
		}
		dst := filepath.Join(dir, name)
		if err := os.WriteFile(dst, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return dst
	}
	return conv(textNormal, "normal.bin"), conv(textFaulty, "faulty.bin")
}

// TestServiceStreamingDeterminismMatchesBatch: a Streaming service's
// report for a PLOT1 pair is byte-identical to a batch service's report
// for the same pair (at different worker counts, to cover the schedule
// axis too), the manifests are mode-marked, and a streaming resubmission
// against the batch service's store is a cache hit — the mode does not
// split the pair key.
func TestServiceStreamingDeterminismMatchesBatch(t *testing.T) {
	dir := t.TempDir()
	normal, faulty := writeBinaryPair(t, dir)
	req := DiffRequest{Normal: normal, Faulty: faulty}

	runOn := func(svc *Service, req DiffRequest) (JobView, []byte, []byte) {
		v, err := svc.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		v = waitState(t, svc, v.ID)
		if v.State != StateDone {
			t.Fatalf("job failed: %s", v.Error)
		}
		report, manifest, ok := svc.Artifacts(v.ID)
		if !ok {
			t.Fatal("artifacts missing")
		}
		return v, report, manifest
	}

	batchSvc := newTestService(t, Config{Workers: 1})
	_, batchReport, batchManifest := runOn(batchSvc, req)

	streamSvc := newTestService(t, Config{Workers: 8, Streaming: true})
	_, streamReport, streamManifest := runOn(streamSvc, req)

	if !bytes.Equal(batchReport, streamReport) {
		t.Errorf("streaming report differs from batch:\n--- batch ---\n%s\n--- stream ---\n%s", batchReport, streamReport)
	}
	if len(batchReport) == 0 {
		t.Fatal("empty report")
	}
	// Manifests carry the mode honestly.
	if !strings.Contains(string(streamManifest), "core.streaming") {
		t.Error("streaming manifest missing core.streaming marker")
	}
	if strings.Contains(string(batchManifest), "core.streaming") {
		t.Error("batch manifest unexpectedly carries the streaming marker")
	}

	// Per-request opt-in resolves to the same pair key: the batch
	// service's cached artifacts satisfy a streaming submission.
	cached, err := batchSvc.Submit(DiffRequest{Normal: normal, Faulty: faulty, Streaming: true})
	if err != nil {
		t.Fatal(err)
	}
	if !cached.Cached {
		t.Error("streaming resubmission did not hit the batch cache")
	}
}

// TestServiceStreamingTextFallbackDeterminism: a Streaming service handed
// text traces silently runs the materialized path and produces the exact
// bytes a batch service does.
func TestServiceStreamingTextFallbackDeterminism(t *testing.T) {
	normal, faulty := fixturePair(t)
	req := DiffRequest{Normal: normal, Faulty: faulty, Streaming: true}

	streamSvc := newTestService(t, Config{Workers: 2, Streaming: true})
	v, err := streamSvc.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	v = waitState(t, streamSvc, v.ID)
	if v.State != StateDone {
		t.Fatalf("job failed: %s", v.Error)
	}
	streamReport, streamManifest, ok := streamSvc.Artifacts(v.ID)
	if !ok {
		t.Fatal("artifacts missing")
	}
	if strings.Contains(string(streamManifest), "core.streaming") {
		t.Error("text fallback manifest claims the streaming mode ran")
	}

	batchSvc := newTestService(t, Config{Workers: 2})
	w, err := batchSvc.Submit(DiffRequest{Normal: normal, Faulty: faulty})
	if err != nil {
		t.Fatal(err)
	}
	w = waitState(t, batchSvc, w.ID)
	if w.State != StateDone {
		t.Fatalf("batch job failed: %s", w.Error)
	}
	batchReport, _, ok := batchSvc.Artifacts(w.ID)
	if !ok {
		t.Fatal("batch artifacts missing")
	}
	if !bytes.Equal(batchReport, streamReport) {
		t.Errorf("text-fallback report differs from batch:\n--- batch ---\n%s\n--- fallback ---\n%s", batchReport, streamReport)
	}
}
