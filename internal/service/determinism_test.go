package service

import (
	"bytes"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"difftrace/internal/obs/olog"
)

// fixturePair returns the repo's checked-in ILCS trace pair — the same
// fixture the FCA golden tests pin.
func fixturePair(t *testing.T) (normal, faulty string) {
	t.Helper()
	root := filepath.Join("..", "..", "testdata", "fca")
	return filepath.Join(root, "ilcs_normal.trace"), filepath.Join(root, "ilcs_faulty.trace")
}

// TestServiceDeterminismWorkersOneVsEight proves the service inherits the
// pipeline's schedule independence end to end: two services — one running
// every job with Workers: 1, one with Workers: 8 — produce byte-identical
// reports AND byte-identical scrubbed obs manifests for the same pair,
// fetched through the HTTP API. This is the service-level extension of
// the CLI's golden manifest determinism suite.
func TestServiceDeterminismWorkersOneVsEight(t *testing.T) {
	normal, faulty := fixturePair(t)
	req := DiffRequest{Normal: normal, Faulty: faulty}

	fetch := func(workers int) (report string, manifest []byte) {
		svc := newTestService(t, Config{Workers: workers})
		ts := httptest.NewServer(svc.Handler())
		defer ts.Close()
		resp, jr := postDiff(t, ts, req)
		if resp.StatusCode != 202 {
			t.Fatalf("workers=%d: POST = %d", workers, resp.StatusCode)
		}
		done := waitJobHTTP(t, ts, jr.ID)
		if done.State != StateDone {
			t.Fatalf("workers=%d: job failed: %s", workers, done.Error)
		}
		return done.Report, done.Manifest
	}

	report1, manifest1 := fetch(1)
	report8, manifest8 := fetch(8)
	if report1 != report8 {
		t.Errorf("reports differ between Workers 1 and 8:\n--- w1 ---\n%s\n--- w8 ---\n%s", report1, report8)
	}
	if !bytes.Equal(manifest1, manifest8) {
		t.Errorf("scrubbed manifests differ between Workers 1 and 8:\n--- w1 ---\n%s\n--- w8 ---\n%s", manifest1, manifest8)
	}
	if len(report1) == 0 || len(manifest1) == 0 {
		t.Fatal("empty artifacts")
	}
}

// TestServiceDeterminismCachedMatchesColdWorkersOne is the acceptance
// gate's cache-vs-cold check: a Workers: 8 service's cached artifact is
// byte-identical to a cold Workers: 1 run of the same pair.
func TestServiceDeterminismCachedMatchesColdWorkersOne(t *testing.T) {
	normal, faulty := fixturePair(t)
	req := DiffRequest{Normal: normal, Faulty: faulty}

	// Cold run at Workers: 1.
	svc1 := newTestService(t, Config{Workers: 1})
	v, err := svc1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	v = waitState(t, svc1, v.ID)
	if v.State != StateDone {
		t.Fatalf("cold run failed: %s", v.Error)
	}
	coldReport, coldManifest, _ := svc1.Artifacts(v.ID)

	// Warm run at Workers: 8, then hit its cache.
	svc8 := newTestService(t, Config{Workers: 8})
	w, err := svc8.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	w = waitState(t, svc8, w.ID)
	if w.State != StateDone {
		t.Fatalf("warm run failed: %s", w.Error)
	}
	cached, err := svc8.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !cached.Cached {
		t.Fatal("second submission not served from cache")
	}
	cachedReport, cachedManifest, ok := svc8.Artifacts(cached.ID)
	if !ok {
		t.Fatal("cached artifacts missing")
	}
	if !bytes.Equal(coldReport, cachedReport) {
		t.Error("cached Workers:8 report differs from cold Workers:1 report")
	}
	if !bytes.Equal(coldManifest, cachedManifest) {
		t.Error("cached Workers:8 manifest differs from cold Workers:1 manifest")
	}
}

// lockedBuf is a race-safe log sink the test can read back after jobs
// settle (settle logs after releasing the job lock, so an unsynchronized
// buffer would race with the HTTP poll observing the done state).
type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestServiceDeterminismTelemetryNoLeak is the telemetry exemption golden:
// with tracing, structured logging, live progress, and the heap sampler
// all enabled, the stored scrubbed manifest is still byte-identical across
// two services (whose submissions necessarily mint different trace IDs),
// and no trace ID — nor the trace_id key itself — survives Scrub into the
// artifact. The trace ID must instead appear on the job view and in every
// job log line, which is where telemetry is supposed to live.
func TestServiceDeterminismTelemetryNoLeak(t *testing.T) {
	normal, faulty := fixturePair(t)
	req := DiffRequest{Normal: normal, Faulty: faulty}

	fetch := func() (manifest []byte, traceID, logs string) {
		var lb lockedBuf
		svc := newTestService(t, Config{Obs: newObsForTest(), Log: olog.New(&lb, olog.Debug)})
		ts := httptest.NewServer(svc.Handler())
		defer ts.Close()
		resp, jr := postDiff(t, ts, req)
		if resp.StatusCode != 202 {
			t.Fatalf("POST = %d", resp.StatusCode)
		}
		done := waitJobHTTP(t, ts, jr.ID)
		if done.State != StateDone {
			t.Fatalf("job failed: %s", done.Error)
		}
		if done.TraceID == "" {
			t.Fatal("done job view has no trace ID")
		}
		return done.Manifest, done.TraceID, lb.String()
	}

	manifest1, tid1, logs1 := fetch()
	manifest2, tid2, _ := fetch()
	if tid1 == tid2 {
		t.Fatalf("two services minted the same trace ID %s", tid1)
	}
	if !bytes.Equal(manifest1, manifest2) {
		t.Errorf("scrubbed manifests differ across trace IDs:\n--- a ---\n%s\n--- b ---\n%s", manifest1, manifest2)
	}
	for _, leak := range []string{"trace_id", tid1, tid2} {
		if strings.Contains(string(manifest1), leak) {
			t.Errorf("scrubbed manifest leaks %q:\n%s", leak, manifest1)
		}
	}
	if !strings.Contains(logs1, tid1) {
		t.Errorf("job logs never mention trace ID %s:\n%s", tid1, logs1)
	}
	if !strings.Contains(logs1, `"msg":"job done"`) {
		t.Errorf("job logs missing completion line:\n%s", logs1)
	}
}
