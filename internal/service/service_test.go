package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"difftrace/internal/obs"
	"difftrace/internal/store"
	"difftrace/internal/trace"
)

// writeTracePair synthesizes a small MPI-flavored normal/faulty trace
// pair on disk. variant perturbs the faulty side (and, when bumped,
// produces a distinct pair → distinct job ID).
func writeTracePair(t *testing.T, dir string, variant int) (normal, faulty string) {
	t.Helper()
	funcs := []string{"MPI_Send", "MPI_Recv", "MPI_Barrier", "MPI_Allreduce", "compute"}
	build := func(shift int) []byte {
		set := trace.NewTraceSet()
		for p := 0; p < 4; p++ {
			tr := set.Get(trace.TID(p, 0))
			for i := 0; i < 60; i++ {
				fn := set.Registry.ID(funcs[(i+p*shift+variant)%len(funcs)])
				tr.Append(fn, trace.Enter)
				tr.Append(fn, trace.Exit)
			}
		}
		var buf bytes.Buffer
		if err := trace.WriteSetText(&buf, set); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	normal = filepath.Join(dir, fmt.Sprintf("normal_%d.trace", variant))
	faulty = filepath.Join(dir, fmt.Sprintf("faulty_%d.trace", variant))
	if err := os.WriteFile(normal, build(0), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(faulty, build(1), 0o644); err != nil {
		t.Fatal(err)
	}
	return normal, faulty
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.StoreDir == "" {
		cfg.StoreDir = t.TempDir()
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	svc, _, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Stop(ctx) //nolint:errcheck
	})
	return svc
}

// waitState polls until the job reaches a terminal state (done/failed).
func waitState(t *testing.T, svc *Service, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, ok := svc.Job(id)
		if ok && (v.State == StateDone || v.State == StateFailed) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never settled: %+v", id, v)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubmitValidation(t *testing.T) {
	svc := newTestService(t, Config{})
	dir := t.TempDir()
	normal, faulty := writeTracePair(t, dir, 0)
	cases := []DiffRequest{
		{},                                     // no paths
		{Normal: normal},                       // missing faulty
		{Normal: normal, Faulty: faulty, Filter: "not-a-spec"},
		{Normal: normal, Faulty: faulty, Attr: "bogus"},
		{Normal: normal, Faulty: faulty, Linkage: "bogus"},
		{Normal: filepath.Join(dir, "absent.trace"), Faulty: faulty},
	}
	for i, req := range cases {
		if _, err := svc.Submit(req); err == nil {
			t.Errorf("case %d: bad request admitted: %+v", i, req)
		}
	}
}

func TestJobLifecycleAndCacheHit(t *testing.T) {
	svc := newTestService(t, Config{})
	normal, faulty := writeTracePair(t, t.TempDir(), 0)

	v1, err := svc.Submit(DiffRequest{Normal: normal, Faulty: faulty})
	if err != nil {
		t.Fatal(err)
	}
	if v1.Cached {
		t.Fatal("first submission claims cached")
	}
	v1 = waitState(t, svc, v1.ID)
	if v1.State != StateDone {
		t.Fatalf("job failed: %s", v1.Error)
	}
	report1, manifest1, ok := svc.Artifacts(v1.ID)
	if !ok {
		t.Fatal("done job has no artifacts")
	}
	if !strings.Contains(string(report1), "DiffTrace report") {
		t.Fatalf("report missing header:\n%s", report1)
	}
	if !bytes.Contains(manifest1, []byte(`"tool": "difftraced"`)) {
		t.Fatalf("manifest missing tool tag:\n%s", manifest1)
	}
	// Scrubbed: no live wall time survives.
	if !bytes.Contains(manifest1, []byte(`"wall_ns": 0`)) && bytes.Contains(manifest1, []byte(`wall_ns`)) {
		t.Errorf("manifest wall time not scrubbed:\n%s", manifest1)
	}

	// Resubmission: cache hit, served from the store with no new run.
	v2, err := svc.Submit(DiffRequest{Normal: normal, Faulty: faulty})
	if err != nil {
		t.Fatal(err)
	}
	if v2.ID != v1.ID {
		t.Fatalf("same pair got different IDs: %s vs %s", v1.ID, v2.ID)
	}
	if !v2.Cached || v2.State != StateDone {
		t.Fatalf("resubmission not a cache hit: %+v", v2)
	}
	report2, manifest2, _ := svc.Artifacts(v2.ID)
	if !bytes.Equal(report1, report2) || !bytes.Equal(manifest1, manifest2) {
		t.Fatal("cached artifacts differ from originals")
	}
}

func TestWorkerCountDoesNotSplitCache(t *testing.T) {
	dir := t.TempDir()
	normal, faulty := writeTracePair(t, dir, 0)
	req := DiffRequest{Normal: normal, Faulty: faulty}
	svc1 := newTestService(t, Config{Workers: 1})
	svc8 := newTestService(t, Config{Workers: 8})
	v1, err := svc1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	v8, err := svc8.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if v1.ID != v8.ID {
		t.Fatalf("worker count split the pair key: %s vs %s", v1.ID, v8.ID)
	}
}

func TestQueueFullRejects(t *testing.T) {
	obsRun := obs.NewRun("test")
	svc := newTestService(t, Config{
		Concurrency: 1, QueueDepth: 1, Obs: obsRun,
		Hooks: Hooks{HoldJob: 30 * time.Second},
	})
	dir := t.TempDir()
	// Three distinct pairs: one runs (held), one queues, one must bounce.
	// Wait for the worker to claim the first before submitting the second
	// so the depth-1 queue deterministically holds exactly one job.
	n0, f0 := writeTracePair(t, dir, 0)
	v0, err := svc.Submit(DiffRequest{Normal: n0, Faulty: f0})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := svc.Job(v0.ID); v.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never claimed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	n1, f1 := writeTracePair(t, dir, 1)
	if _, err := svc.Submit(DiffRequest{Normal: n1, Faulty: f1}); err != nil {
		t.Fatal(err)
	}
	n, f := writeTracePair(t, dir, 2)
	_, err = svc.Submit(DiffRequest{Normal: n, Faulty: f})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if svc.RetryAfterSeconds() < 1 {
		t.Fatalf("RetryAfterSeconds = %d", svc.RetryAfterSeconds())
	}
	if obsRun.Counter("service.rejected_full").Value() != 1 {
		t.Fatal("rejection not counted")
	}
}

func TestDedupJoinsInFlightJob(t *testing.T) {
	obsRun := obs.NewRun("test")
	svc := newTestService(t, Config{
		Concurrency: 1, QueueDepth: 4, Obs: obsRun,
		Hooks: Hooks{HoldJob: 30 * time.Second},
	})
	normal, faulty := writeTracePair(t, t.TempDir(), 0)
	req := DiffRequest{Normal: normal, Faulty: faulty}
	v1, err := svc.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := svc.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if v1.ID != v2.ID {
		t.Fatal("identical pair produced two jobs")
	}
	if got := obsRun.Counter("service.dedup_joined").Value(); got != 1 {
		t.Fatalf("dedup_joined = %d, want 1", got)
	}
	if got := obsRun.Counter("service.admitted").Value(); got != 1 {
		t.Fatalf("admitted = %d, want 1", got)
	}
}

func TestRetryTransientThenSucceed(t *testing.T) {
	obsRun := obs.NewRun("test")
	var attempts []int
	svc := newTestService(t, Config{
		Obs: obsRun, MaxAttempts: 4,
		RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
		Hooks: Hooks{BeforeAttempt: func(id string, attempt int) error {
			attempts = append(attempts, attempt)
			if attempt < 3 {
				return fmt.Errorf("injected flake: %w", ErrTransient)
			}
			return nil
		}},
	})
	normal, faulty := writeTracePair(t, t.TempDir(), 0)
	v, err := svc.Submit(DiffRequest{Normal: normal, Faulty: faulty})
	if err != nil {
		t.Fatal(err)
	}
	v = waitState(t, svc, v.ID)
	if v.State != StateDone {
		t.Fatalf("job failed after retries: %s", v.Error)
	}
	if v.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3", v.Attempts)
	}
	if got := obsRun.Counter("service.retries").Value(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	if len(attempts) != 3 || attempts[0] != 1 || attempts[2] != 3 {
		t.Fatalf("attempt sequence = %v", attempts)
	}
}

func TestTransientExhaustionFails(t *testing.T) {
	svc := newTestService(t, Config{
		MaxAttempts: 2, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
		Hooks: Hooks{BeforeAttempt: func(string, int) error {
			return fmt.Errorf("always down: %w", ErrTransient)
		}},
	})
	normal, faulty := writeTracePair(t, t.TempDir(), 0)
	v, _ := svc.Submit(DiffRequest{Normal: normal, Faulty: faulty})
	v = waitState(t, svc, v.ID)
	if v.State != StateFailed || v.Attempts != 2 {
		t.Fatalf("view = %+v, want failed after 2 attempts", v)
	}
	if !strings.Contains(v.Error, "always down") {
		t.Fatalf("error lost: %q", v.Error)
	}
}

func TestFatalErrorDoesNotRetry(t *testing.T) {
	svc := newTestService(t, Config{
		MaxAttempts: 5,
		Hooks: Hooks{BeforeAttempt: func(string, int) error {
			return errors.New("structurally broken")
		}},
	})
	normal, faulty := writeTracePair(t, t.TempDir(), 0)
	v, _ := svc.Submit(DiffRequest{Normal: normal, Faulty: faulty})
	v = waitState(t, svc, v.ID)
	if v.State != StateFailed || v.Attempts != 1 {
		t.Fatalf("view = %+v, want failed on first attempt", v)
	}
}

func TestPanicIsolatedIntoJobRecord(t *testing.T) {
	obsRun := obs.NewRun("test")
	svc := newTestService(t, Config{
		Obs: obsRun,
		Hooks: Hooks{BeforeAttempt: func(string, int) error {
			panic("pipeline blew up")
		}},
	})
	normal, faulty := writeTracePair(t, t.TempDir(), 0)
	v, _ := svc.Submit(DiffRequest{Normal: normal, Faulty: faulty})
	v = waitState(t, svc, v.ID)
	if v.State != StateFailed {
		t.Fatalf("state = %s, want failed", v.State)
	}
	if !strings.Contains(v.Error, "pipeline blew up") {
		t.Fatalf("panic text lost: %q", v.Error)
	}
	if obsRun.Counter("service.panics").Value() != 1 {
		t.Fatal("panic not counted")
	}
	// The worker survived: a fresh (distinct) job still completes.
	svc.cfg.Hooks.BeforeAttempt = nil
	n2, f2 := writeTracePair(t, t.TempDir(), 1)
	v2, err := svc.Submit(DiffRequest{Normal: n2, Faulty: f2})
	if err != nil {
		t.Fatal(err)
	}
	if v2 = waitState(t, svc, v2.ID); v2.State != StateDone {
		t.Fatalf("post-panic job failed: %s", v2.Error)
	}
}

func TestDeadlineExpiryFailsJob(t *testing.T) {
	svc := newTestService(t, Config{
		MaxAttempts: 3,
		Hooks:       Hooks{HoldJob: 30 * time.Second},
	})
	normal, faulty := writeTracePair(t, t.TempDir(), 0)
	v, err := svc.Submit(DiffRequest{Normal: normal, Faulty: faulty, TimeoutMs: 50})
	if err != nil {
		t.Fatal(err)
	}
	v = waitState(t, svc, v.ID)
	if v.State != StateFailed {
		t.Fatalf("state = %s, want failed", v.State)
	}
	if !strings.Contains(v.Error, context.DeadlineExceeded.Error()) {
		t.Fatalf("error = %q, want deadline exceeded", v.Error)
	}
	if v.Attempts != 1 {
		t.Fatalf("deadline expiry retried: %d attempts", v.Attempts)
	}
}

func TestCorruptArtifactQuarantinedNotServed(t *testing.T) {
	storeDir := t.TempDir()
	svc := newTestService(t, Config{StoreDir: storeDir})
	normal, faulty := writeTracePair(t, t.TempDir(), 0)
	v, _ := svc.Submit(DiffRequest{Normal: normal, Faulty: faulty})
	v = waitState(t, svc, v.ID)
	if v.State != StateDone {
		t.Fatalf("job failed: %s", v.Error)
	}
	report1, _, _ := svc.Artifacts(v.ID)

	// Corrupt the stored report in place (bit rot / torn write).
	artPath := filepath.Join(storeDir, "objects", v.ID+"-report.art")
	raw, err := os.ReadFile(artPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(artPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// The corrupt artifact is never served: Artifacts reads as a miss and
	// the file lands in quarantine.
	if _, _, ok := svc.Artifacts(v.ID); ok {
		t.Fatal("corrupt artifact was served")
	}
	q, err := svc.Store().Quarantined()
	if err != nil {
		t.Fatal(err)
	}
	if len(q) == 0 {
		t.Fatal("corrupt artifact not quarantined")
	}

	// Resubmission recomputes (cache miss now) and the fresh report is
	// byte-identical to the original run.
	v2, err := svc.Submit(DiffRequest{Normal: normal, Faulty: faulty})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Cached {
		t.Fatal("resubmission after quarantine claims cached")
	}
	v2 = waitState(t, svc, v2.ID)
	if v2.State != StateDone {
		t.Fatalf("recompute failed: %s", v2.Error)
	}
	report2, _, ok := svc.Artifacts(v2.ID)
	if !ok {
		t.Fatal("recomputed artifacts missing")
	}
	if !bytes.Equal(report1, report2) {
		t.Fatal("recomputed report differs from the original")
	}
}

func TestGracefulShutdownDrainsAndPersists(t *testing.T) {
	storeDir := t.TempDir()
	dir := t.TempDir()
	svc := newTestService(t, Config{
		StoreDir: storeDir, Concurrency: 1, QueueDepth: 8,
		Hooks: Hooks{HoldJob: 200 * time.Millisecond},
	})
	// One running (held), two queued.
	var ids []string
	var reqs []DiffRequest
	for i := 0; i < 3; i++ {
		n, f := writeTracePair(t, dir, i)
		req := DiffRequest{Normal: n, Faulty: f}
		v, err := svc.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
		reqs = append(reqs, req)
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.QueueDepth() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached depth 2 (have %d)", svc.QueueDepth())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Generous drain deadline: the running job finishes, the queued two
	// persist.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	persisted, err := svc.Stop(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if persisted != 2 {
		t.Fatalf("persisted %d jobs, want 2", persisted)
	}
	if !svc.Draining() {
		t.Fatal("Draining() false after Stop")
	}
	if _, err := svc.Submit(reqs[0]); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-Stop Submit err = %v, want ErrDraining", err)
	}
	// The in-flight job drained to completion.
	if v, _ := svc.Job(ids[0]); v.State != StateDone {
		t.Fatalf("in-flight job state after drain = %s, want done", v.State)
	}
	if _, err := os.Stat(queueFile(storeDir)); err != nil {
		t.Fatalf("queue.json not written: %v", err)
	}

	// Restart against the same store: the persisted jobs restore, run,
	// and the queue file is consumed.
	svc2 := newTestService(t, Config{StoreDir: storeDir, Concurrency: 2})
	for _, id := range ids[1:] {
		v := waitState(t, svc2, id)
		if v.State != StateDone {
			t.Fatalf("restored job %s failed: %s", id, v.Error)
		}
	}
	if _, err := os.Stat(queueFile(storeDir)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("queue.json not consumed on restore: %v", err)
	}
}

func TestShutdownDeadlineCancelsStragglers(t *testing.T) {
	storeDir := t.TempDir()
	svc := newTestService(t, Config{
		StoreDir: storeDir, Concurrency: 1,
		Hooks: Hooks{HoldJob: 30 * time.Second},
	})
	normal, faulty := writeTracePair(t, t.TempDir(), 0)
	v, err := svc.Submit(DiffRequest{Normal: normal, Faulty: faulty})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker holds the job mid-run.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cur, _ := svc.Job(v.ID); cur.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Tiny drain deadline: the held job cannot finish, gets cancelled,
	// and is persisted as queued work for the next boot.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	persisted, err := svc.Stop(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if persisted != 1 {
		t.Fatalf("persisted %d jobs, want the cancelled straggler", persisted)
	}
	// Restart without the hold: the job completes.
	svc2 := newTestService(t, Config{StoreDir: storeDir})
	v2 := waitState(t, svc2, v.ID)
	if v2.State != StateDone {
		t.Fatalf("recovered job failed: %s", v2.Error)
	}
}

func TestCorruptQueueFileDoesNotBrickBoot(t *testing.T) {
	storeDir := t.TempDir()
	if err := os.MkdirAll(storeDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(queueFile(storeDir), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	svc := newTestService(t, Config{StoreDir: storeDir})
	if svc == nil {
		t.Fatal("boot failed on corrupt queue.json")
	}
	if _, err := os.Stat(queueFile(storeDir) + ".corrupt"); err != nil {
		t.Fatalf("corrupt queue.json not preserved for inspection: %v", err)
	}
}

func TestStoreRecoveryAtBoot(t *testing.T) {
	storeDir := t.TempDir()
	st, _, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("deadbeef", KindReport, []byte("artifact")); err != nil {
		t.Fatal(err)
	}
	// Truncate it: the service's boot-time recovery scan must quarantine.
	path := filepath.Join(storeDir, "objects", "deadbeef-report.art")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	svc, recovery, err := New(context.Background(), Config{StoreDir: storeDir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		svc.Stop(ctx) //nolint:errcheck
	}()
	if recovery.Quarantined() != 1 {
		t.Fatalf("recovery quarantined %d, want 1\n%s", recovery.Quarantined(), recovery.Render())
	}
}

func TestTransientClassification(t *testing.T) {
	if Transient(nil) {
		t.Error("nil is transient")
	}
	if !Transient(fmt.Errorf("wrap: %w", ErrTransient)) {
		t.Error("wrapped ErrTransient not transient")
	}
	if Transient(errors.New("plain")) {
		t.Error("plain error transient")
	}
	if Transient(context.DeadlineExceeded) || Transient(context.Canceled) {
		t.Error("ctx verdicts classified transient")
	}
	// Even a Temporary() error is a verdict once a ctx error is in the chain.
	if Transient(fmt.Errorf("%w after %w", ErrTransient, context.Canceled)) {
		t.Error("cancellation chain classified transient")
	}
}
