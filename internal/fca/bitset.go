package fca

import "math/bits"

const wordBits = 64

// BitSet is a word-packed set of small non-negative integers — the dense
// representation behind AttrSet once attribute strings have been interned.
// All kernels tolerate operands of different lengths (missing high words
// read as zero), so sets over a growing attribute universe never need
// re-padding.
type BitSet []uint64

// Set inserts i, growing the word slice as needed.
func (b *BitSet) Set(i int) {
	w := i / wordBits
	for len(*b) <= w {
		*b = append(*b, 0)
	}
	(*b)[w] |= 1 << (i % wordBits)
}

// Has reports membership of i.
func (b BitSet) Has(i int) bool {
	w := i / wordBits
	return w < len(b) && b[w]&(1<<(i%wordBits)) != 0
}

// PopCount returns the cardinality.
func (b BitSet) PopCount() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no bit is set.
func (b BitSet) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (b BitSet) Clone() BitSet {
	if len(b) == 0 {
		return nil
	}
	out := make(BitSet, len(b))
	copy(out, b)
	return out
}

// And returns b ∩ o.
func (b BitSet) And(o BitSet) BitSet {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	out := make(BitSet, n)
	for i := 0; i < n; i++ {
		out[i] = b[i] & o[i]
	}
	return out
}

// AndInPlace replaces b with b ∩ o.
func (b *BitSet) AndInPlace(o BitSet) {
	s := *b
	for i := range s {
		if i < len(o) {
			s[i] &= o[i]
		} else {
			s[i] = 0
		}
	}
}

// Or returns b ∪ o.
func (b BitSet) Or(o BitSet) BitSet {
	long, short := b, o
	if len(short) > len(long) {
		long, short = short, long
	}
	out := long.Clone()
	for i := range short {
		out[i] |= short[i]
	}
	return out
}

// OrInPlace folds o into b.
func (b *BitSet) OrInPlace(o BitSet) {
	for len(*b) < len(o) {
		*b = append(*b, 0)
	}
	s := *b
	for i := range o {
		s[i] |= o[i]
	}
}

// AndNot returns b \ o.
func (b BitSet) AndNot(o BitSet) BitSet {
	out := b.Clone()
	for i := range out {
		if i < len(o) {
			out[i] &^= o[i]
		}
	}
	return out
}

// SubsetOf reports b ⊆ o.
func (b BitSet) SubsetOf(o BitSet) bool {
	for i, w := range b {
		if i < len(o) {
			if w&^o[i] != 0 {
				return false
			}
		} else if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports set equality (length-tolerant: trailing zero words are
// insignificant).
func (b BitSet) Equal(o BitSet) bool {
	long, short := b, o
	if len(short) > len(long) {
		long, short = short, long
	}
	for i := range short {
		if long[i] != short[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// IntersectCount returns |b ∩ o| without materializing the intersection —
// the popcount kernel behind Jaccard cells.
func (b BitSet) IntersectCount(o BitSet) int {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(b[i] & o[i])
	}
	return c
}

// Prefix returns a copy of the bits strictly below i (the lectic-order
// helper NextClosure uses).
func (b BitSet) Prefix(i int) BitSet {
	w, r := i/wordBits, i%wordBits
	n := w
	if r > 0 {
		n = w + 1
	}
	if len(b) < n {
		n = len(b)
	}
	out := make(BitSet, n)
	copy(out, b[:n])
	if r > 0 && w < len(out) {
		out[w] &= (1 << r) - 1
	}
	return out
}

// AnyBelowNotIn reports whether b has a bit strictly below i that o lacks —
// the lectic successor test (b is rejected if it adds an attribute before
// position i).
func (b BitSet) AnyBelowNotIn(o BitSet, i int) bool {
	w, r := i/wordBits, i%wordBits
	for k := 0; k < w && k < len(b); k++ {
		d := b[k]
		if k < len(o) {
			d &^= o[k]
		}
		if d != 0 {
			return true
		}
	}
	if r > 0 && w < len(b) {
		d := b[w] & ((1 << r) - 1)
		if w < len(o) {
			d &^= o[w]
		}
		if d != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn for every set bit in ascending order.
func (b BitSet) ForEach(fn func(i int)) {
	for k, w := range b {
		for w != 0 {
			t := bits.TrailingZeros64(w)
			fn(k*wordBits + t)
			w &= w - 1
		}
	}
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Signature returns an allocation-free 64-bit FNV-1a hash over the words up
// to the last non-zero word, so equal sets hash equally regardless of slice
// capacity. It replaces the sorted-strings.Join signature of the map-based
// AttrSet; callers that key by signature must still confirm with Equal,
// since 64-bit hashes can collide.
func (b BitSet) Signature() uint64 {
	last := len(b) - 1
	for last >= 0 && b[last] == 0 {
		last--
	}
	h := uint64(fnvOffset)
	for i := 0; i <= last; i++ {
		w := b[i]
		for byteIdx := 0; byteIdx < 8; byteIdx++ {
			h ^= w & 0xff
			h *= fnvPrime
			w >>= 8
		}
	}
	return h
}
