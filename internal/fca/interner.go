package fca

import "sync"

// Interner maps attribute strings to dense non-negative IDs. IDs are
// assigned in first-Intern order and never change, so word-packed bitsets
// indexed by ID stay valid as the universe grows. One Interner is shared
// across every AttrSet, Context, and Lattice of a diff run (both the normal
// and faulty sides), which makes their intents directly comparable as
// bitsets: same attribute, same bit, no string hashing on the hot path.
//
// The interner is safe for concurrent use — parallel attribute extraction
// interns from many goroutines. The ID an attribute receives may therefore
// vary between schedules, but IDs never reach any output: rendering always
// goes through the attribute strings in sorted order, and similarity math
// uses only popcounts, so every observable artifact stays
// schedule-independent (the same argument as nlr.Table's overlay merge).
type Interner struct {
	mu    sync.RWMutex
	ids   map[string]int
	names []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]int)}
}

// Intern returns the dense ID for name, assigning the next free ID on first
// sight.
func (in *Interner) Intern(name string) int {
	in.mu.RLock()
	id, ok := in.ids[name]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[name]; ok {
		return id
	}
	id = len(in.names)
	in.ids[name] = id
	in.names = append(in.names, name)
	return id
}

// Lookup returns name's ID without assigning one.
func (in *Interner) Lookup(name string) (int, bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	id, ok := in.ids[name]
	return id, ok
}

// Name returns the attribute string for a previously assigned ID.
func (in *Interner) Name(id int) string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.names[id]
}

// Len returns the number of interned attributes.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.names)
}
