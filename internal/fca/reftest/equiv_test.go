// Differential equivalence suite: the bitset-backed fca.AttrSet must agree
// with the frozen map-based reference on every operation, for attribute
// universes from a handful of names up to 10k. Sets are compared through
// their observable string API (Sorted/Has/Len/String), never through
// representation internals, so the suite stays valid no matter how the
// bitset layout evolves.
package reftest

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"difftrace/internal/fca"
)

// universe returns n distinct attribute names. Names share long prefixes on
// purpose so map-hashing and string-compare behavior is exercised, not just
// single-letter toys.
func universe(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("MPI_Attr_%06d", i)
	}
	return out
}

// pair is one random subset drawn in both representations.
type pair struct {
	bs  fca.AttrSet
	ref Set
}

// drawPair picks each attribute of the universe with probability p, adding
// it to both representations in the same (shuffled) order.
func drawPair(rng *rand.Rand, in *fca.Interner, attrs []string, p float64) pair {
	chosen := make([]string, 0, len(attrs))
	for _, a := range attrs {
		if rng.Float64() < p {
			chosen = append(chosen, a)
		}
	}
	rng.Shuffle(len(chosen), func(i, j int) { chosen[i], chosen[j] = chosen[j], chosen[i] })
	pr := pair{bs: fca.NewAttrSetIn(in), ref: New()}
	for _, a := range chosen {
		pr.bs.Add(a)
		pr.ref.Add(a)
	}
	return pr
}

// mustMatch fails unless the bitset and reference sets are observably equal.
func mustMatch(t *testing.T, label string, bs fca.AttrSet, ref Set) {
	t.Helper()
	if got, want := bs.Sorted(), ref.Sorted(); !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: Sorted %v != reference %v", label, got, want)
	}
	if bs.Len() != ref.Len() {
		t.Fatalf("%s: Len %d != reference %d", label, bs.Len(), ref.Len())
	}
	if bs.String() != ref.String() {
		t.Fatalf("%s: String %q != reference %q", label, bs.String(), ref.String())
	}
}

// checkOps runs every AttrSet operation on a random pair of sets in both
// representations and cross-checks the results.
func checkOps(t *testing.T, rng *rand.Rand, in *fca.Interner, attrs []string, p float64) {
	t.Helper()
	a := drawPair(rng, in, attrs, p)
	b := drawPair(rng, in, attrs, p)
	mustMatch(t, "a", a.bs, a.ref)
	mustMatch(t, "b", b.bs, b.ref)
	mustMatch(t, "intersect", a.bs.Intersect(b.bs), a.ref.Intersect(b.ref))
	mustMatch(t, "union", a.bs.Union(b.bs), a.ref.Union(b.ref))
	if got, want := a.bs.SubsetOf(b.bs), a.ref.SubsetOf(b.ref); got != want {
		t.Fatalf("SubsetOf %v != reference %v (a=%s b=%s)", got, want, a.bs, b.bs)
	}
	if got, want := a.bs.Equal(b.bs), a.ref.Equal(b.ref); got != want {
		t.Fatalf("Equal %v != reference %v", got, want)
	}
	if got, want := a.bs.Jaccard(b.bs), a.ref.Jaccard(b.ref); got != want {
		t.Fatalf("Jaccard %v != reference %v", got, want)
	}
	// Membership spot checks across the whole universe would be O(n²);
	// sample a few attributes instead.
	for k := 0; k < 8 && len(attrs) > 0; k++ {
		at := attrs[rng.Intn(len(attrs))]
		if a.bs.Has(at) != a.ref.Has(at) {
			t.Fatalf("Has(%q) disagrees with reference", at)
		}
	}
	// Signature-equality: within one interner, equal sets hash equally and
	// (FNV collisions aside — none in this seeded corpus) unequal sets
	// differ, matching the reference's exact string signature.
	sigEq := a.bs.Signature() == b.bs.Signature()
	refEq := a.ref.Signature() == b.ref.Signature()
	if sigEq != refEq {
		t.Fatalf("signature equality %v != reference %v (a=%s b=%s)", sigEq, refEq, a.bs, b.bs)
	}
	// The intersection derived via the subset route must agree too:
	// a ⊆ b ⇔ a∩b = a, in both representations.
	if a.bs.SubsetOf(b.bs) != a.bs.Intersect(b.bs).Equal(a.bs) {
		t.Fatal("bitset: SubsetOf inconsistent with Intersect/Equal")
	}
}

// TestEquivAttrSetUniverses drives the differential check over universes
// from 3 to 10k attributes, at sparse/medium/dense fill rates, with sets
// sharing one interner (the production shape: word-kernel fast paths).
func TestEquivAttrSetUniverses(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{3, 17, 63, 64, 65, 300, 1000, 10000} {
		attrs := universe(n)
		rounds := 40
		if n >= 1000 {
			rounds = 4 // large universes: fewer, fatter rounds
		}
		for _, p := range []float64{0.02, 0.5, 0.95} {
			for r := 0; r < rounds; r++ {
				in := fca.NewInterner()
				checkOps(t, rng, in, attrs, p)
			}
		}
	}
}

// TestEquivAttrSetCrossInterner re-runs the suite with the two operand sets
// bound to different interners, exercising the string-remapping slow path
// that ad-hoc callers (tests, examples) hit.
func TestEquivAttrSetCrossInterner(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	attrs := universe(200)
	for r := 0; r < 60; r++ {
		a := drawPair(rng, fca.NewInterner(), attrs, 0.3)
		b := drawPair(rng, fca.NewInterner(), attrs, 0.3)
		mustMatch(t, "intersect", a.bs.Intersect(b.bs), a.ref.Intersect(b.ref))
		mustMatch(t, "union", a.bs.Union(b.bs), a.ref.Union(b.ref))
		if a.bs.SubsetOf(b.bs) != a.ref.SubsetOf(b.ref) {
			t.Fatal("cross-interner SubsetOf disagrees")
		}
		if a.bs.Equal(b.bs) != a.ref.Equal(b.ref) {
			t.Fatal("cross-interner Equal disagrees")
		}
		if a.bs.Jaccard(b.bs) != a.ref.Jaccard(b.ref) {
			t.Fatal("cross-interner Jaccard disagrees")
		}
	}
}

// TestEquivSignatureInsertionOrder: within one interner the signature is a
// function of the set only — the order attributes were added (and the order
// the interner first saw other attributes) must not leak in.
func TestEquivSignatureInsertionOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	attrs := universe(128)
	in := fca.NewInterner()
	// Pre-intern some noise so the chosen attrs get scattered IDs.
	for _, a := range attrs {
		if rng.Intn(2) == 0 {
			fca.NewAttrSetIn(in, a)
		}
	}
	chosen := attrs[:40]
	a := fca.NewAttrSetIn(in, chosen...)
	perm := append([]string(nil), chosen...)
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	b := fca.NewAttrSetIn(in, perm...)
	if !a.Equal(b) {
		t.Fatal("same attributes, different insertion order: not Equal")
	}
	if a.Signature() != b.Signature() {
		t.Fatal("same attributes, different insertion order: signatures differ")
	}
}

// TestEquivLattice cross-checks whole lattices: Godin + NextClosure on the
// bitset engine against Godin + NextClosure on the frozen reference, over
// random contexts.
func TestEquivLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	attrs := universe(9)
	for round := 0; round < 50; round++ {
		nObj := rng.Intn(7) + 1
		bl := fca.NewLattice()
		rl := NewLattice()
		rctx := NewContext()
		for i := 0; i < nObj; i++ {
			var names []string
			for _, a := range attrs {
				if rng.Intn(2) == 0 {
					names = append(names, a)
				}
			}
			g := fmt.Sprintf("T%d", i)
			bl.AddObject(g, fca.NewAttrSet(names...))
			rl.AddObject(g, New(names...))
			rctx.AddObject(g, New(names...))
		}
		bcs, rcs := bl.Concepts(), rl.Concepts()
		if len(bcs) != len(rcs) {
			t.Fatalf("round %d: %d concepts != reference %d", round, len(bcs), len(rcs))
		}
		for i := range bcs {
			if !reflect.DeepEqual(bcs[i].Extent, rcs[i].Extent) {
				t.Fatalf("round %d concept %d: extent %v != reference %v",
					round, i, bcs[i].Extent, rcs[i].Extent)
			}
			if got, want := bcs[i].Intent.Sorted(), rcs[i].Intent.Sorted(); !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d concept %d: intent %v != reference %v", round, i, got, want)
			}
		}
		if got, want := bl.Edges(), rl.Edges(); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: edges %v != reference %v", round, got, want)
		}
		if got, want := len(fca.NextClosure(bl.Context())), len(NextClosure(rctx)); got != want {
			t.Fatalf("round %d: NextClosure %d concepts != reference %d", round, got, want)
		}
	}
}

// FuzzEquivAttrSet interprets the fuzz input as an op script over a 128-name
// universe — add to a, add to b, intersect, union — and cross-checks every
// intermediate against the reference. Runs as a deterministic seed-replay
// test in `make fuzz-seeds` via the checked-in corpus.
func FuzzEquivAttrSet(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 130, 131, 4, 4, 4})
	f.Add([]byte{255, 254, 253, 0, 0, 128, 129, 200, 64, 63})
	f.Fuzz(func(t *testing.T, script []byte) {
		attrs := universe(128)
		in := fca.NewInterner()
		abs, aref := fca.NewAttrSetIn(in), New()
		bbs, bref := fca.NewAttrSetIn(in), New()
		for _, op := range script {
			switch {
			case op < 128: // add attrs[op] to a
				abs.Add(attrs[op])
				aref.Add(attrs[op])
			case op < 192: // add attrs[op-128] (and a neighbor) to b
				bbs.Add(attrs[op-128])
				bref.Add(attrs[op-128])
			default: // rebind a to a∩b or a∪b
				if op%2 == 0 {
					abs, aref = abs.Intersect(bbs), aref.Intersect(bref)
				} else {
					abs, aref = abs.Union(bbs), aref.Union(bref)
				}
			}
		}
		mustMatch(t, "a", abs, aref)
		mustMatch(t, "b", bbs, bref)
		if abs.SubsetOf(bbs) != aref.SubsetOf(bref) {
			t.Fatal("SubsetOf disagrees with reference")
		}
		if abs.Equal(bbs) != aref.Equal(bref) {
			t.Fatal("Equal disagrees with reference")
		}
		if abs.Jaccard(bbs) != aref.Jaccard(bref) {
			t.Fatal("Jaccard disagrees with reference")
		}
	})
}
