package reftest

import "sort"

// Context is the pre-bitset formal context: per-object intents stored in a
// map of Sets.
type Context struct {
	objects []string       // insertion order
	intents map[string]Set // object -> attributes
	attrs   Set            // M, the attribute universe
}

// NewContext returns an empty formal context.
func NewContext() *Context {
	return &Context{intents: make(map[string]Set), attrs: New()}
}

// AddObject inserts object g with the given attribute set. Re-adding an
// object replaces its attributes.
func (c *Context) AddObject(g string, intent Set) {
	if _, exists := c.intents[g]; !exists {
		c.objects = append(c.objects, g)
	}
	c.intents[g] = intent.Clone()
	for a := range intent {
		c.attrs.Add(a)
	}
}

// Objects returns the object names in insertion order.
func (c *Context) Objects() []string {
	out := make([]string, len(c.objects))
	copy(out, c.objects)
	return out
}

// Attributes returns M (a copy).
func (c *Context) Attributes() Set { return c.attrs.Clone() }

// Intent returns object g's attribute set, nil if g is unknown.
func (c *Context) Intent(g string) Set {
	in, ok := c.intents[g]
	if !ok {
		return nil
	}
	return in.Clone()
}

// Extent computes B′ = {g ∈ G : B ⊆ g′} for an attribute set B.
func (c *Context) Extent(b Set) []string {
	var out []string
	for _, g := range c.objects {
		if b.SubsetOf(c.intents[g]) {
			out = append(out, g)
		}
	}
	return out
}

// CommonIntent computes A′ = ∩_{g∈A} g′; for empty A it returns M.
func (c *Context) CommonIntent(objs []string) Set {
	if len(objs) == 0 {
		return c.attrs.Clone()
	}
	out := c.intents[objs[0]].Clone()
	for _, g := range objs[1:] {
		out = out.Intersect(c.intents[g])
	}
	return out
}

// Closure computes B″ = (B′)′.
func (c *Context) Closure(b Set) Set {
	return c.CommonIntent(c.Extent(b))
}

// Concept is a formal concept (A, B) over the reference representation.
type Concept struct {
	Extent []string
	Intent Set
}

// Lattice is the pre-bitset incremental lattice: concepts keyed by the
// joined-string intent signature, with the original O(n³) Edges scan.
type Lattice struct {
	ctx      *Context
	concepts map[string]*Concept
}

// NewLattice returns an empty lattice over an empty context.
func NewLattice() *Lattice {
	return &Lattice{ctx: NewContext(), concepts: make(map[string]*Concept)}
}

// Context exposes the underlying formal context.
func (l *Lattice) Context() *Context { return l.ctx }

// AddObject is Godin's incremental insertion, exactly as the map era ran it.
func (l *Lattice) AddObject(g string, intent Set) {
	l.ctx.AddObject(g, intent)
	own := l.ctx.Intent(g)

	snapshot := make([]*Concept, 0, len(l.concepts))
	//lint:allow maprange frozen reference implementation: the modified/generator scans over this snapshot are commutative (ensure keys by intent signature), exactly as the original shipped
	for _, c := range l.concepts {
		snapshot = append(snapshot, c)
	}
	for _, c := range snapshot {
		if c.Intent.SubsetOf(own) {
			c.Extent = append(c.Extent, g)
		}
	}
	for _, c := range snapshot {
		l.ensure(c.Intent.Intersect(own))
	}
	l.ensure(own)
}

func (l *Lattice) ensure(intent Set) {
	sig := intent.Signature()
	if _, ok := l.concepts[sig]; ok {
		return
	}
	l.concepts[sig] = &Concept{Extent: l.ctx.Extent(intent), Intent: intent.Clone()}
}

// Size reports the number of concepts including the on-demand bottom.
func (l *Lattice) Size() int { return len(l.Concepts()) }

// Concepts returns all concepts ordered by decreasing extent size then by
// intent signature; the bottom (intent = M) is synthesized when absent.
func (l *Lattice) Concepts() []*Concept {
	out := make([]*Concept, 0, len(l.concepts)+1)
	for _, c := range l.concepts {
		out = append(out, c)
	}
	m := l.ctx.Attributes()
	if _, ok := l.concepts[m.Signature()]; !ok && m.Len() > 0 {
		out = append(out, &Concept{Extent: l.ctx.Extent(m), Intent: m})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Extent) != len(out[j].Extent) {
			return len(out[i].Extent) > len(out[j].Extent)
		}
		return out[i].Intent.Signature() < out[j].Intent.Signature()
	})
	return out
}

// Leq reports the lattice order c1 ≤ c2.
func Leq(c1, c2 *Concept) bool { return c2.Intent.SubsetOf(c1.Intent) }

// Edges returns Hasse cover pairs with the original all-triples scan.
func (l *Lattice) Edges() [][2]int {
	cs := l.Concepts()
	var edges [][2]int
	for i, lo := range cs {
		for j, hi := range cs {
			if i == j || !Leq(lo, hi) || Leq(hi, lo) {
				continue
			}
			covered := true
			for k, mid := range cs {
				if k == i || k == j {
					continue
				}
				if Leq(lo, mid) && Leq(mid, hi) && !Leq(mid, lo) && !Leq(hi, mid) {
					covered = false
					break
				}
			}
			if covered {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return edges
}

// NextClosure is Ganter's batch algorithm over the reference representation
// (bool slices over the sorted attribute order).
func NextClosure(ctx *Context) []*Concept {
	attrs := ctx.Attributes().Sorted()
	m := len(attrs)
	index := make(map[string]int, m)
	for i, a := range attrs {
		index[a] = i
	}

	toSet := func(bits []bool) Set {
		s := New()
		for i, b := range bits {
			if b {
				s.Add(attrs[i])
			}
		}
		return s
	}
	closure := func(bits []bool) []bool {
		closed := ctx.Closure(toSet(bits))
		out := make([]bool, m)
		for a := range closed {
			out[index[a]] = true
		}
		return out
	}

	var concepts []*Concept
	emit := func(bits []bool) {
		in := toSet(bits)
		concepts = append(concepts, &Concept{Extent: ctx.Extent(in), Intent: in})
	}

	a := closure(make([]bool, m))
	emit(a)
	if m == 0 {
		return concepts
	}
	full := func(bits []bool) bool {
		for _, b := range bits {
			if !b {
				return false
			}
		}
		return true
	}
	for !full(a) {
		advanced := false
		for i := m - 1; i >= 0; i-- {
			if a[i] {
				continue
			}
			cand := make([]bool, m)
			copy(cand, a[:i])
			cand[i] = true
			b := closure(cand)
			ok := true
			for j := 0; j < i; j++ {
				if b[j] && !a[j] {
					ok = false
					break
				}
			}
			if ok {
				a = b
				emit(a)
				advanced = true
				break
			}
		}
		if !advanced {
			break
		}
	}
	return concepts
}
