// Package reftest preserves the original map-based FCA representation as a
// reference implementation: Set is the old map[string]struct{} AttrSet
// verbatim, and Lattice/Context/NextClosure are the old map-keyed engine.
// It exists for two jobs only — the differential equivalence suite asserts
// the bitset fca package agrees with it operation by operation, and the
// BenchmarkFCA_* "impl=mapref" variants measure the speedup against it. It
// is deliberately frozen: do not optimize or extend it.
package reftest

import (
	"sort"
	"strings"
)

// Set is a set of attribute names — the pre-bitset AttrSet.
type Set map[string]struct{}

// New builds a set from the given attributes.
func New(attrs ...string) Set {
	s := make(Set, len(attrs))
	for _, a := range attrs {
		s[a] = struct{}{}
	}
	return s
}

// Add inserts a.
func (s Set) Add(a string) { s[a] = struct{}{} }

// Has reports membership.
func (s Set) Has(a string) bool { _, ok := s[a]; return ok }

// Len reports cardinality.
func (s Set) Len() int { return len(s) }

// Clone returns a copy.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	for a := range s {
		c[a] = struct{}{}
	}
	return c
}

// Intersect returns s ∩ o.
func (s Set) Intersect(o Set) Set {
	small, big := s, o
	if len(big) < len(small) {
		small, big = big, small
	}
	out := make(Set)
	for a := range small {
		if big.Has(a) {
			out[a] = struct{}{}
		}
	}
	return out
}

// Union returns s ∪ o.
func (s Set) Union(o Set) Set {
	out := s.Clone()
	for a := range o {
		out[a] = struct{}{}
	}
	return out
}

// SubsetOf reports s ⊆ o.
func (s Set) SubsetOf(o Set) bool {
	if len(s) > len(o) {
		return false
	}
	for a := range s {
		if !o.Has(a) {
			return false
		}
	}
	return true
}

// Equal reports set equality.
func (s Set) Equal(o Set) bool {
	return len(s) == len(o) && s.SubsetOf(o)
}

// Jaccard returns |s∩o| / |s∪o| (1 for two empty sets, by convention).
func (s Set) Jaccard(o Set) float64 {
	inter := 0
	for a := range s {
		if o.Has(a) {
			inter++
		}
	}
	union := len(s) + len(o) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Sorted returns the attributes in lexicographic order.
func (s Set) Sorted() []string {
	out := make([]string, 0, len(s))
	for a := range s {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Signature returns the canonical string key of the set — the join the
// bitset implementation's 64-bit FNV signature replaced.
func (s Set) Signature() string { return strings.Join(s.Sorted(), "\x00") }

// String renders like "{a, b, c}".
func (s Set) String() string { return "{" + strings.Join(s.Sorted(), ", ") + "}" }
