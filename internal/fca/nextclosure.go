package fca

import "difftrace/internal/obs"

// NextClosure implements Ganter's batch lattice-construction algorithm: it
// enumerates every closed intent of the context in lectic order. The paper
// (§III-B) notes it "requires the whole context to be present in main
// memory and is, therefore, inefficient for long HPC traces"; it is kept
// here as the baseline for the Godin-incremental ablation benchmark and as
// an independent oracle for the incremental lattice in tests.
func NextClosure(ctx *Context) []*Concept {
	return NextClosureObserved(ctx, nil)
}

// NextClosureObserved is NextClosure with construction accounting folded
// into r: "fca.ganter.closures" counts closure computations (the dominant
// cost Ganter pays that Godin's incremental insertions avoid — see
// Lattice.Observe for the matching "fca.godin.steps") and
// "fca.ganter.concepts" the concepts emitted.
func NextClosureObserved(ctx *Context, r *obs.Run) []*Concept {
	closures := r.Counter("fca.ganter.closures")
	emitted := r.Counter("fca.ganter.concepts")
	concepts := nextClosure(ctx, closures)
	emitted.Add(int64(len(concepts)))
	return concepts
}

// nextClosure runs in "rank space": attribute rank i is position i of the
// sorted attribute list (the lectic order a_0 < a_1 < ... the algorithm
// needs), and intents are BitSets over ranks. Object rows are translated
// once up front; after that every closure is a subset test plus an AND fold
// over packed words, and the lectic successor check is the AnyBelowNotIn
// word kernel.
func nextClosure(ctx *Context, closures *obs.Counter) []*Concept {
	attrs := ctx.Attributes().Sorted() // fixed linear order a_0 < a_1 < ...
	m := len(attrs)
	rank := make(map[string]int, m)
	for i, a := range attrs {
		rank[a] = i
	}

	// Translate object intents from interner-ID space to rank space.
	rows := make([]BitSet, len(ctx.objects))
	for gi := range ctx.objects {
		var row BitSet
		ctx.intents[gi].bits.ForEach(func(id int) {
			row.Set(rank[ctx.in.Name(id)])
		})
		rows[gi] = row
	}
	var fullM BitSet
	for i := 0; i < m; i++ {
		fullM.Set(i)
	}

	// closure computes B″ as the AND of every object row containing B; with
	// no such row it is M (the standard convention, matching CommonIntent).
	closure := func(b BitSet) BitSet {
		closures.Add(1)
		var out BitSet
		first := true
		for _, row := range rows {
			if !b.SubsetOf(row) {
				continue
			}
			if first {
				out = row.Clone()
				first = false
			} else {
				out.AndInPlace(row)
			}
		}
		if first {
			return fullM.Clone()
		}
		return out
	}

	toSet := func(b BitSet) AttrSet {
		s := &Set{in: ctx.in}
		b.ForEach(func(r int) { s.Add(attrs[r]) })
		return s
	}
	var concepts []*Concept
	emit := func(b BitSet) {
		in := toSet(b)
		concepts = append(concepts, &Concept{Extent: ctx.Extent(in), Intent: in})
	}

	// First closed set: ∅″.
	a := closure(nil)
	emit(a)
	if m == 0 {
		return concepts
	}
	for a.PopCount() < m {
		advanced := false
		for i := m - 1; i >= 0; i-- {
			if a.Has(i) {
				continue
			}
			// Candidate: (a ∩ {0..i-1}) ∪ {i}, closed.
			cand := a.Prefix(i)
			cand.Set(i)
			b := closure(cand)
			// b is the lectic successor iff it adds no attribute < i.
			if !b.AnyBelowNotIn(a, i) {
				a = b
				emit(a)
				advanced = true
				break
			}
		}
		if !advanced { // defensive: cannot happen for a valid context
			break
		}
	}
	return concepts
}
