package fca

import "difftrace/internal/obs"

// NextClosure implements Ganter's batch lattice-construction algorithm: it
// enumerates every closed intent of the context in lectic order. The paper
// (§III-B) notes it "requires the whole context to be present in main
// memory and is, therefore, inefficient for long HPC traces"; it is kept
// here as the baseline for the Godin-incremental ablation benchmark and as
// an independent oracle for the incremental lattice in tests.
func NextClosure(ctx *Context) []*Concept {
	return NextClosureObserved(ctx, nil)
}

// NextClosureObserved is NextClosure with construction accounting folded
// into r: "fca.ganter.closures" counts closure computations (the dominant
// cost Ganter pays that Godin's incremental insertions avoid — see
// Lattice.Observe for the matching "fca.godin.steps") and
// "fca.ganter.concepts" the concepts emitted.
func NextClosureObserved(ctx *Context, r *obs.Run) []*Concept {
	closures := r.Counter("fca.ganter.closures")
	emitted := r.Counter("fca.ganter.concepts")
	concepts := nextClosure(ctx, closures)
	emitted.Add(int64(len(concepts)))
	return concepts
}

func nextClosure(ctx *Context, closures *obs.Counter) []*Concept {
	attrs := ctx.Attributes().Sorted() // fixed linear order a_0 < a_1 < ...
	m := len(attrs)
	index := make(map[string]int, m)
	for i, a := range attrs {
		index[a] = i
	}

	// Work on bitmask-like bool slices over the attribute order.
	toSet := func(bits []bool) AttrSet {
		s := NewAttrSet()
		for i, b := range bits {
			if b {
				s.Add(attrs[i])
			}
		}
		return s
	}
	closure := func(bits []bool) []bool {
		closures.Add(1)
		closed := ctx.Closure(toSet(bits))
		out := make([]bool, m)
		for a := range closed {
			out[index[a]] = true
		}
		return out
	}

	var concepts []*Concept
	emit := func(bits []bool) {
		in := toSet(bits)
		concepts = append(concepts, &Concept{Extent: ctx.Extent(in), Intent: in})
	}

	// First closed set: ∅″.
	a := closure(make([]bool, m))
	emit(a)
	if m == 0 {
		return concepts
	}
	full := func(bits []bool) bool {
		for _, b := range bits {
			if !b {
				return false
			}
		}
		return true
	}
	for !full(a) {
		advanced := false
		for i := m - 1; i >= 0; i-- {
			if a[i] {
				continue
			}
			// Candidate: (a ∩ {0..i-1}) ∪ {i}, closed.
			cand := make([]bool, m)
			copy(cand, a[:i])
			cand[i] = true
			b := closure(cand)
			// b is the lectic successor iff it adds no attribute < i.
			ok := true
			for j := 0; j < i; j++ {
				if b[j] && !a[j] {
					ok = false
					break
				}
			}
			if ok {
				a = b
				emit(a)
				advanced = true
				break
			}
		}
		if !advanced { // defensive: cannot happen for a valid context
			break
		}
	}
	return concepts
}
