package fca

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"difftrace/internal/obs"
)

func TestAttrSetOps(t *testing.T) {
	a := NewAttrSet("x", "y", "z")
	b := NewAttrSet("y", "z", "w")
	if got := a.Intersect(b).Sorted(); !reflect.DeepEqual(got, []string{"y", "z"}) {
		t.Errorf("intersect = %v", got)
	}
	if got := a.Union(b).Sorted(); !reflect.DeepEqual(got, []string{"w", "x", "y", "z"}) {
		t.Errorf("union = %v", got)
	}
	if !NewAttrSet("y").SubsetOf(a) || a.SubsetOf(b) {
		t.Error("subset wrong")
	}
	if !a.Equal(NewAttrSet("z", "y", "x")) {
		t.Error("equal wrong")
	}
	if a.Jaccard(b) != 0.5 {
		t.Errorf("jaccard = %f, want 0.5", a.Jaccard(b))
	}
	if NewAttrSet().Jaccard(NewAttrSet()) != 1 {
		t.Error("empty-empty jaccard should be 1")
	}
	if a.String() != "{x, y, z}" {
		t.Errorf("string = %q", a.String())
	}
	c := a.Clone()
	c.Add("q")
	if a.Has("q") {
		t.Error("Clone aliases storage")
	}
}

// tableIVContext builds the paper's Table IV formal context.
func tableIVContext() *Context {
	ctx := NewContext()
	common := []string{"MPI_Init", "MPI_Comm_Size", "MPI_Comm_Rank", "MPI_Finalize"}
	even := NewAttrSet(append([]string{"L0"}, common...)...)
	odd := NewAttrSet(append([]string{"L1"}, common...)...)
	ctx.AddObject("T0", even)
	ctx.AddObject("T1", odd)
	ctx.AddObject("T2", even)
	ctx.AddObject("T3", odd)
	return ctx
}

func TestContextBasics(t *testing.T) {
	ctx := tableIVContext()
	if got := ctx.Objects(); !reflect.DeepEqual(got, []string{"T0", "T1", "T2", "T3"}) {
		t.Errorf("objects = %v", got)
	}
	if ctx.Attributes().Len() != 6 {
		t.Errorf("|M| = %d", ctx.Attributes().Len())
	}
	if !ctx.Has("T0", "L0") || ctx.Has("T0", "L1") {
		t.Error("incidence wrong")
	}
	if got := ctx.Extent(NewAttrSet("L0")); !reflect.DeepEqual(got, []string{"T0", "T2"}) {
		t.Errorf("extent(L0) = %v", got)
	}
	if got := ctx.CommonIntent([]string{"T0", "T1"}).Sorted(); len(got) != 4 {
		t.Errorf("common intent = %v", got)
	}
	// Closure of {MPI_Init} is the set of attributes shared by all traces.
	if got := ctx.Closure(NewAttrSet("MPI_Init")); got.Len() != 4 {
		t.Errorf("closure = %v", got)
	}
	// Empty object list derives to M.
	if !ctx.CommonIntent(nil).Equal(ctx.Attributes()) {
		t.Error("empty derivation should be M")
	}
	if ctx.Intent("nope") != nil {
		t.Error("unknown object intent should be nil")
	}
}

func TestCrossTableRendering(t *testing.T) {
	out := tableIVContext().CrossTable()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + 4 objects
		t.Fatalf("cross table rows = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "L0") || !strings.Contains(lines[0], "MPI_Finalize") {
		t.Errorf("header = %q", lines[0])
	}
	if strings.Count(lines[1], "x") != 5 { // T0 has 5 attributes
		t.Errorf("T0 row = %q", lines[1])
	}
}

func TestContextDensity(t *testing.T) {
	ctx := tableIVContext()
	want := float64(4*5) / float64(4*6)
	if got := ctx.Density(); got != want {
		t.Errorf("density = %f, want %f", got, want)
	}
	if NewContext().Density() != 0 {
		t.Error("empty density should be 0")
	}
}

func latticeFromContext(ctx *Context) *Lattice {
	l := NewLattice()
	for _, g := range ctx.Objects() {
		l.AddObject(g, ctx.Intent(g))
	}
	return l
}

func TestFigure3Lattice(t *testing.T) {
	l := latticeFromContext(tableIVContext())
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
	cs := l.Concepts()
	if len(cs) != 4 {
		t.Fatalf("concepts = %d, want 4 (Figure 3):\n%s", len(cs), l.Render())
	}
	top := l.Top()
	if len(top.Extent) != 4 || top.Intent.Len() != 4 {
		t.Errorf("top = %s", top)
	}
	bottom := l.Bottom()
	if len(bottom.Extent) != 0 || bottom.Intent.Len() != 6 {
		t.Errorf("bottom = %s", bottom)
	}
	// Middle nodes separate even from odd traces.
	var mids []*Concept
	for _, c := range cs[1 : len(cs)-1] {
		mids = append(mids, c)
	}
	if len(mids) != 2 {
		t.Fatalf("middle concepts = %d", len(mids))
	}
	extents := []string{strings.Join(mids[0].Extent, ","), strings.Join(mids[1].Extent, ",")}
	sort.Strings(extents)
	if !reflect.DeepEqual(extents, []string{"T0,T2", "T1,T3"}) {
		t.Errorf("middle extents = %v", extents)
	}
}

func TestLatticeEdgesFigure3(t *testing.T) {
	l := latticeFromContext(tableIVContext())
	edges := l.Edges()
	// Diamond: bottom->mid1, bottom->mid2, mid1->top, mid2->top.
	if len(edges) != 4 {
		t.Fatalf("edges = %v", edges)
	}
	cs := l.Concepts()
	for _, e := range edges {
		if !Leq(cs[e[0]], cs[e[1]]) {
			t.Errorf("edge %v not ordered", e)
		}
	}
}

func TestLatticeRender(t *testing.T) {
	l := latticeFromContext(tableIVContext())
	out := l.Render()
	if !strings.Contains(out, "4 concepts") {
		t.Errorf("render:\n%s", out)
	}
	// Reduced labeling: some node introduces exactly L0.
	if !strings.Contains(out, "introduces {L0}") {
		t.Errorf("render missing reduced label:\n%s", out)
	}
}

func TestEmptyLattice(t *testing.T) {
	l := NewLattice()
	if l.Top() != nil || l.Bottom() != nil || l.Size() != 0 {
		t.Error("empty lattice should have no concepts")
	}
	if err := l.Verify(); err != nil {
		t.Error(err)
	}
}

func TestDuplicateIntents(t *testing.T) {
	l := NewLattice()
	l.AddObject("a", NewAttrSet("x", "y"))
	l.AddObject("b", NewAttrSet("x", "y"))
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
	cs := l.Concepts()
	// One proper concept {a,b}:{x,y} plus no distinct bottom needed (it
	// coincides: M = {x,y} has extent {a,b}).
	if len(cs) != 1 {
		t.Fatalf("concepts = %v", cs)
	}
	if len(cs[0].Extent) != 2 {
		t.Errorf("extent = %v", cs[0].Extent)
	}
}

func TestNextClosureTableIV(t *testing.T) {
	cs := NextClosure(tableIVContext())
	if len(cs) != 4 {
		t.Fatalf("NextClosure found %d concepts, want 4", len(cs))
	}
}

func conceptSigs(cs []*Concept) []string {
	sigs := make([]string, len(cs))
	for i, c := range cs {
		sigs[i] = c.Intent.String() + "##" + strings.Join(c.Extent, "|")
	}
	sort.Strings(sigs)
	return sigs
}

// Property: the incremental lattice and NextClosure agree on random
// contexts — each is an independent oracle for the other.
func TestQuickGodinEqualsNextClosure(t *testing.T) {
	attrs := []string{"a", "b", "c", "d", "e", "f"}
	f := func(seed int64, nObj uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nObj)%6 + 1
		ctx := NewContext()
		l := NewLattice()
		for i := 0; i < n; i++ {
			in := NewAttrSet()
			for _, a := range attrs {
				if rng.Intn(2) == 0 {
					in.Add(a)
				}
			}
			name := string(rune('A' + i))
			ctx.AddObject(name, in)
			l.AddObject(name, in)
		}
		if err := l.Verify(); err != nil {
			t.Logf("verify: %v", err)
			return false
		}
		got := conceptSigs(l.Concepts())
		want := conceptSigs(NextClosure(ctx))
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: Jaccard similarity is a proper similarity (symmetric, 1 on
// identical sets, in [0,1]).
func TestQuickJaccardProperties(t *testing.T) {
	f := func(xa, xb uint16) bool {
		mk := func(bits uint16) AttrSet {
			s := NewAttrSet()
			for i := 0; i < 10; i++ {
				if bits&(1<<i) != 0 {
					s.Add(string(rune('a' + i)))
				}
			}
			return s
		}
		a, b := mk(xa), mk(xb)
		j1, j2 := a.Jaccard(b), b.Jaccard(a)
		if j1 != j2 || j1 < 0 || j1 > 1 {
			return false
		}
		if a.Equal(b) && j1 != 1 {
			return false
		}
		return a.Jaccard(a) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: lattice size is monotone in objects and Verify always holds.
func TestQuickLatticeInvariants(t *testing.T) {
	attrs := []string{"p", "q", "r", "s"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewLattice()
		prev := 0
		for i := 0; i < 5; i++ {
			in := NewAttrSet()
			for _, a := range attrs {
				if rng.Intn(2) == 0 {
					in.Add(a)
				}
			}
			l.AddObject(string(rune('A'+i)), in)
			if err := l.Verify(); err != nil {
				return false
			}
			size := l.Size()
			if size < prev-1 { // bottom may merge into a real concept
				return false
			}
			prev = size
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestConceptsSortCache: Size/Top/Bottom/Concepts share one cached sorted
// view that is rebuilt at most once per AddObject batch — the regression
// guard for the old behavior of re-sorting every call, counted through the
// "fca.concepts.sorts" obs counter.
func TestConceptsSortCache(t *testing.T) {
	run := obs.NewRun("test")
	l := NewLattice()
	l.Observe(run)
	ctx := tableIVContext()
	for _, g := range ctx.Objects() {
		l.AddObject(g, ctx.Intent(g))
	}
	sorts := run.Counter("fca.concepts.sorts")
	before := sorts.Value()
	for i := 0; i < 10; i++ {
		l.Size()
		l.Top()
		l.Bottom()
		l.Concepts()
	}
	if got := sorts.Value() - before; got != 1 {
		t.Errorf("40 read calls cost %d sorts, want exactly 1", got)
	}
	// A mutation invalidates the cache: exactly one more rebuild.
	l.AddObject("T4", NewAttrSet("L0", "MPI_Init"))
	l.Size()
	l.Size()
	if got := sorts.Value() - before; got != 2 {
		t.Errorf("after AddObject: %d sorts total, want 2", got)
	}
}

// TestInterner: dense first-seen IDs, stable lookups, and round-tripping.
func TestInterner(t *testing.T) {
	in := NewInterner()
	a := in.Intern("alpha")
	b := in.Intern("beta")
	if a == b || in.Intern("alpha") != a || in.Len() != 2 {
		t.Fatalf("interning broken: a=%d b=%d len=%d", a, b, in.Len())
	}
	if in.Name(a) != "alpha" || in.Name(b) != "beta" {
		t.Error("Name round-trip broken")
	}
	if id, ok := in.Lookup("beta"); !ok || id != b {
		t.Error("Lookup broken")
	}
	if _, ok := in.Lookup("gamma"); ok {
		t.Error("Lookup invented an ID")
	}
}

// TestBitSetKernels exercises the word kernels across the 64-bit boundary,
// where length-tolerance bugs live.
func TestBitSetKernels(t *testing.T) {
	var a, b BitSet
	a.Set(1)
	a.Set(63)
	a.Set(64)
	b.Set(63)
	if a.PopCount() != 3 || b.PopCount() != 1 {
		t.Fatalf("popcounts %d/%d", a.PopCount(), b.PopCount())
	}
	if !b.SubsetOf(a) || a.SubsetOf(b) {
		t.Error("subset across word boundary broken")
	}
	if got := a.And(b).PopCount(); got != 1 {
		t.Errorf("and popcount = %d", got)
	}
	if got := a.Or(b).PopCount(); got != 3 {
		t.Errorf("or popcount = %d", got)
	}
	if got := a.AndNot(b).PopCount(); got != 2 {
		t.Errorf("andnot popcount = %d", got)
	}
	if a.IntersectCount(b) != 1 {
		t.Error("intersect count broken")
	}
	// Equal must ignore trailing zero words.
	c := a.Clone()
	c = append(c, 0, 0)
	if !a.Equal(c) || a.Signature() != c.Signature() {
		t.Error("trailing zero words changed equality or signature")
	}
	var got []int
	a.ForEach(func(i int) { got = append(got, i) })
	if !reflect.DeepEqual(got, []int{1, 63, 64}) {
		t.Errorf("ForEach = %v", got)
	}
	// Prefix/AnyBelowNotIn: the lectic kernels.
	if p := a.Prefix(64); p.PopCount() != 2 || p.Has(64) {
		t.Errorf("prefix(64) = %v", p)
	}
	if !a.AnyBelowNotIn(b, 64) { // a has bit 1 below 64 that b lacks
		t.Error("AnyBelowNotIn missed bit 1")
	}
	if b.AnyBelowNotIn(a, 65) { // everything in b below 65 is in a
		t.Error("AnyBelowNotIn false positive")
	}
}

func BenchmarkGodinIncremental(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	intents := make([]AttrSet, 32)
	attrs := make([]string, 20)
	for i := range attrs {
		attrs[i] = string(rune('a' + i))
	}
	for i := range intents {
		in := NewAttrSet()
		for _, a := range attrs {
			if rng.Intn(3) == 0 {
				in.Add(a)
			}
		}
		intents[i] = in
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := NewLattice()
		for j, in := range intents {
			l.AddObject(string(rune('A'+j)), in)
		}
	}
}
