package fca_test

import (
	"fmt"

	"difftrace/internal/fca"
)

// Building Figure 3's lattice incrementally from the Table IV context:
// even traces carry loop L0, odd traces loop L1.
func ExampleLattice() {
	l := fca.NewLattice()
	common := []string{"MPI_Init", "MPI_Finalize"}
	l.AddObject("T0", fca.NewAttrSet(append([]string{"L0"}, common...)...))
	l.AddObject("T1", fca.NewAttrSet(append([]string{"L1"}, common...)...))
	l.AddObject("T2", fca.NewAttrSet(append([]string{"L0"}, common...)...))
	l.AddObject("T3", fca.NewAttrSet(append([]string{"L1"}, common...)...))

	for _, c := range l.Concepts() {
		fmt.Println(c)
	}
	// Output:
	// ({T0, T1, T2, T3}, {MPI_Finalize, MPI_Init})
	// ({T0, T2}, {L0, MPI_Finalize, MPI_Init})
	// ({T1, T3}, {L1, MPI_Finalize, MPI_Init})
	// ({}, {L0, L1, MPI_Finalize, MPI_Init})
}
