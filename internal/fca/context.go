package fca

import (
	"fmt"
	"strings"
)

// Context is a formal context K = (G, M, I): objects G, attributes M, and
// the incidence relation I stored as per-object attribute sets (§III-B,
// Table IV).
type Context struct {
	objects []string           // insertion order
	intents map[string]AttrSet // object -> attributes
	attrs   AttrSet            // M, the attribute universe
}

// NewContext returns an empty formal context.
func NewContext() *Context {
	return &Context{intents: make(map[string]AttrSet), attrs: NewAttrSet()}
}

// AddObject inserts object g with the given attribute set. Re-adding an
// object replaces its attributes.
func (c *Context) AddObject(g string, intent AttrSet) {
	if _, exists := c.intents[g]; !exists {
		c.objects = append(c.objects, g)
	}
	c.intents[g] = intent.Clone()
	for a := range intent {
		c.attrs.Add(a)
	}
}

// Objects returns the object names in insertion order.
func (c *Context) Objects() []string {
	out := make([]string, len(c.objects))
	copy(out, c.objects)
	return out
}

// Attributes returns M (a copy).
func (c *Context) Attributes() AttrSet { return c.attrs.Clone() }

// Intent returns object g's attribute set (the derivation {g}′), nil if g
// is unknown.
func (c *Context) Intent(g string) AttrSet {
	in, ok := c.intents[g]
	if !ok {
		return nil
	}
	return in.Clone()
}

// Has reports the incidence relation I(g, m).
func (c *Context) Has(g, m string) bool {
	in, ok := c.intents[g]
	return ok && in.Has(m)
}

// Extent computes B′ = {g ∈ G : B ⊆ g′} for an attribute set B.
func (c *Context) Extent(b AttrSet) []string {
	var out []string
	for _, g := range c.objects {
		if b.SubsetOf(c.intents[g]) {
			out = append(out, g)
		}
	}
	return out
}

// CommonIntent computes A′ = ∩_{g∈A} g′ for an object list A; for an empty
// A it returns M (the standard FCA convention).
func (c *Context) CommonIntent(objs []string) AttrSet {
	if len(objs) == 0 {
		return c.attrs.Clone()
	}
	out := c.intents[objs[0]].Clone()
	for _, g := range objs[1:] {
		out = out.Intersect(c.intents[g])
	}
	return out
}

// Closure computes B″ = (B′)′, the smallest closed intent containing B.
func (c *Context) Closure(b AttrSet) AttrSet {
	return c.CommonIntent(c.Extent(b))
}

// CrossTable renders the context like Table IV: rows are objects, columns
// attributes (sorted), cells "×".
func (c *Context) CrossTable() string {
	attrs := c.attrs.Sorted()
	w := make([]int, len(attrs))
	nameW := 0
	for i, a := range attrs {
		w[i] = len(a)
	}
	for _, g := range c.objects {
		if len(g) > nameW {
			nameW = len(g)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s", nameW, "")
	for i, a := range attrs {
		fmt.Fprintf(&b, " | %-*s", w[i], a)
	}
	b.WriteByte('\n')
	for _, g := range c.objects {
		fmt.Fprintf(&b, "%-*s", nameW, g)
		for i, a := range attrs {
			mark := ""
			if c.intents[g].Has(a) {
				mark = "x"
			}
			fmt.Fprintf(&b, " | %-*s", w[i], mark)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Density returns |I| / (|G|·|M|), the context sparseness that drives
// lattice-construction cost (§III-B cites Kuznetsov & Obiedkov).
func (c *Context) Density() float64 {
	if len(c.objects) == 0 || c.attrs.Len() == 0 {
		return 0
	}
	n := 0
	for _, g := range c.objects {
		n += c.intents[g].Len()
	}
	return float64(n) / float64(len(c.objects)*c.attrs.Len())
}
