package fca

import (
	"fmt"
	"strings"
)

// Context is a formal context K = (G, M, I): objects G, attributes M, and
// the incidence relation I stored as per-object attribute sets (§III-B,
// Table IV). Intents live in a dense slice parallel to the object list and
// are all bound to one Interner, so Extent/Closure scans are pure bitset
// subset/intersection kernels.
type Context struct {
	in      *Interner
	objects []string       // insertion order
	index   map[string]int // object name -> position in objects/intents
	intents []AttrSet      // parallel to objects
	attrs   AttrSet        // M, the attribute universe
}

// NewContext returns an empty formal context over a fresh interner.
func NewContext() *Context { return NewContextWith(NewInterner()) }

// NewContextWith returns an empty formal context bound to in. A diff run
// passes one interner to both the normal and faulty contexts so their
// intents share a bit universe and stay directly comparable.
func NewContextWith(in *Interner) *Context {
	return &Context{in: in, index: make(map[string]int), attrs: &Set{in: in}}
}

// Interner returns the attribute universe this context interns into.
func (c *Context) Interner() *Interner { return c.in }

// adopt translates an intent into this context's universe. Same-interner
// sets just clone; foreign sets re-intern their attributes in sorted order,
// so the IDs this context assigns never depend on the caller's insertion
// order.
func (c *Context) adopt(intent AttrSet) AttrSet {
	if intent == nil {
		return &Set{in: c.in}
	}
	if intent.Interner() == c.in {
		return intent.Clone()
	}
	out := &Set{in: c.in}
	for _, a := range intent.Sorted() {
		out.Add(a)
	}
	return out
}

// AddObject inserts object g with the given attribute set. Re-adding an
// object replaces its attributes.
func (c *Context) AddObject(g string, intent AttrSet) {
	adopted := c.adopt(intent)
	if i, ok := c.index[g]; ok {
		c.intents[i] = adopted
	} else {
		c.index[g] = len(c.objects)
		c.objects = append(c.objects, g)
		c.intents = append(c.intents, adopted)
	}
	c.attrs.bits.OrInPlace(adopted.bits)
}

// Objects returns the object names in insertion order.
func (c *Context) Objects() []string {
	out := make([]string, len(c.objects))
	copy(out, c.objects)
	return out
}

// Attributes returns M (a copy).
func (c *Context) Attributes() AttrSet { return c.attrs.Clone() }

// intentOf returns g's stored intent, or an empty set for unknown objects.
func (c *Context) intentOf(g string) AttrSet {
	if i, ok := c.index[g]; ok {
		return c.intents[i]
	}
	return &Set{in: c.in}
}

// Intent returns object g's attribute set (the derivation {g}′), nil if g
// is unknown.
func (c *Context) Intent(g string) AttrSet {
	i, ok := c.index[g]
	if !ok {
		return nil
	}
	return c.intents[i].Clone()
}

// Has reports the incidence relation I(g, m).
func (c *Context) Has(g, m string) bool {
	i, ok := c.index[g]
	return ok && c.intents[i].Has(m)
}

// Extent computes B′ = {g ∈ G : B ⊆ g′} for an attribute set B.
func (c *Context) Extent(b AttrSet) []string {
	var out []string
	for i, g := range c.objects {
		if b.SubsetOf(c.intents[i]) {
			out = append(out, g)
		}
	}
	return out
}

// CommonIntent computes A′ = ∩_{g∈A} g′ for an object list A; for an empty
// A it returns M (the standard FCA convention).
func (c *Context) CommonIntent(objs []string) AttrSet {
	if len(objs) == 0 {
		return c.attrs.Clone()
	}
	out := c.intentOf(objs[0]).Clone()
	for _, g := range objs[1:] {
		out = out.Intersect(c.intentOf(g))
	}
	return out
}

// Closure computes B″ = (B′)′, the smallest closed intent containing B.
func (c *Context) Closure(b AttrSet) AttrSet {
	return c.CommonIntent(c.Extent(b))
}

// CrossTable renders the context like Table IV: rows are objects, columns
// attributes (sorted), cells "×".
func (c *Context) CrossTable() string {
	attrs := c.attrs.Sorted()
	w := make([]int, len(attrs))
	nameW := 0
	for i, a := range attrs {
		w[i] = len(a)
	}
	for _, g := range c.objects {
		if len(g) > nameW {
			nameW = len(g)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s", nameW, "")
	for i, a := range attrs {
		fmt.Fprintf(&b, " | %-*s", w[i], a)
	}
	b.WriteByte('\n')
	for i, g := range c.objects {
		fmt.Fprintf(&b, "%-*s", nameW, g)
		for j, a := range attrs {
			mark := ""
			if c.intents[i].Has(a) {
				mark = "x"
			}
			fmt.Fprintf(&b, " | %-*s", w[j], mark)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Density returns |I| / (|G|·|M|), the context sparseness that drives
// lattice-construction cost (§III-B cites Kuznetsov & Obiedkov).
func (c *Context) Density() float64 {
	if len(c.objects) == 0 || c.attrs.Len() == 0 {
		return 0
	}
	n := 0
	for i := range c.objects {
		n += c.intents[i].Len()
	}
	return float64(n) / float64(len(c.objects)*c.attrs.Len())
}
