// Package fca implements Formal Concept Analysis (§III-B): formal contexts
// whose objects are traces and whose attributes are mined trace features,
// concept lattices built with Godin's incremental algorithm, and Ganter's
// batch NextClosure algorithm as the baseline it is compared against.
//
// Attribute sets are word-packed bitsets over a dense string Interner, so
// the lattice kernels (intersection, subset, closure, Jaccard) run as
// And/popcount word loops instead of map operations; the historical
// string-based API (NewAttrSet, Add, Sorted, String) remains as a thin
// view, and every rendered artifact is byte-identical to the old map-backed
// implementation. The map implementation survives as the differential
// oracle in internal/fca/reftest.
package fca

import (
	"sort"
	"strings"
)

// Set is the bitset-backed attribute set: dense IDs from a shared Interner,
// membership packed into a BitSet. Sets bound to the same Interner combine
// with pure word kernels; sets from different interners fall back to a
// string-remapping slow path, so independently constructed sets (tests,
// ad-hoc callers) still behave like plain string sets.
type Set struct {
	in   *Interner
	bits BitSet
}

// AttrSet is a set of attribute names. It is an alias for *Set so the
// map-era API shape survives: a nil AttrSet is a valid empty set for
// reads, assignment aliases storage (like map values), and Clone makes an
// independent copy.
type AttrSet = *Set

// NewAttrSet builds a set over a fresh private interner.
func NewAttrSet(attrs ...string) AttrSet {
	return NewAttrSetIn(NewInterner(), attrs...)
}

// NewAttrSetIn builds a set bound to the given interner — the constructor
// every pipeline stage uses so one diff run shares one attribute universe.
func NewAttrSetIn(in *Interner, attrs ...string) AttrSet {
	s := &Set{in: in}
	for _, a := range attrs {
		s.Add(a)
	}
	return s
}

// Interner returns the attribute universe this set is bound to.
func (s *Set) Interner() *Interner {
	if s == nil {
		return nil
	}
	return s.in
}

// Bits exposes the packed words for read-only kernel use (jaccard's row
// popcounts); callers must not mutate them.
func (s *Set) Bits() BitSet {
	if s == nil {
		return nil
	}
	return s.bits
}

// Add inserts a.
func (s *Set) Add(a string) { s.bits.Set(s.in.Intern(a)) }

// Has reports membership.
func (s *Set) Has(a string) bool {
	if s == nil {
		return false
	}
	id, ok := s.in.Lookup(a)
	return ok && s.bits.Has(id)
}

// Len reports cardinality.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return s.bits.PopCount()
}

// Clone returns an independent copy bound to the same interner.
func (s *Set) Clone() AttrSet {
	if s == nil {
		return nil
	}
	return &Set{in: s.in, bits: s.bits.Clone()}
}

// sameUniverse reports whether the word-kernel fast path applies.
func (s *Set) sameUniverse(o *Set) bool {
	return s != nil && o != nil && s.in == o.in
}

// Intersect returns s ∩ o, bound to s's interner.
func (s *Set) Intersect(o AttrSet) AttrSet {
	if s == nil {
		return &Set{in: NewInterner()}
	}
	if s.sameUniverse(o) {
		return &Set{in: s.in, bits: s.bits.And(o.bits)}
	}
	out := &Set{in: s.in}
	s.bits.ForEach(func(id int) {
		if o.Has(s.in.Name(id)) {
			out.bits.Set(id)
		}
	})
	return out
}

// Union returns s ∪ o, bound to s's interner.
func (s *Set) Union(o AttrSet) AttrSet {
	if s == nil {
		if o == nil {
			return &Set{in: NewInterner()}
		}
		return o.Clone()
	}
	if s.sameUniverse(o) {
		return &Set{in: s.in, bits: s.bits.Or(o.bits)}
	}
	out := s.Clone()
	if o != nil {
		o.bits.ForEach(func(id int) {
			out.Add(o.in.Name(id))
		})
	}
	return out
}

// SubsetOf reports s ⊆ o.
func (s *Set) SubsetOf(o AttrSet) bool {
	if s == nil {
		return true
	}
	if s.sameUniverse(o) {
		return s.bits.SubsetOf(o.bits)
	}
	ok := true
	s.bits.ForEach(func(id int) {
		if ok && !o.Has(s.in.Name(id)) {
			ok = false
		}
	})
	return ok
}

// Equal reports set equality.
func (s *Set) Equal(o AttrSet) bool {
	if s.sameUniverse(o) {
		return s.bits.Equal(o.bits)
	}
	return s.Len() == o.Len() && s.SubsetOf(o)
}

// Jaccard returns |s∩o| / |s∪o| — the similarity measure the JSM stage uses
// (1 for two empty sets, by convention). On a shared interner one cell is a
// single And+popcount pass over the packed words.
func (s *Set) Jaccard(o AttrSet) float64 {
	var inter int
	if s.sameUniverse(o) {
		inter = s.bits.IntersectCount(o.bits)
	} else if s != nil {
		s.bits.ForEach(func(id int) {
			if o.Has(s.in.Name(id)) {
				inter++
			}
		})
	}
	union := s.Len() + o.Len() - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Sorted returns the attributes in lexicographic order. Interner IDs are
// assigned in first-seen order, so this decodes and sorts the strings —
// rendering goes through here, which is what keeps every artifact
// schedule-independent even though IDs are not.
func (s *Set) Sorted() []string {
	if s == nil {
		return []string{}
	}
	out := make([]string, 0, s.bits.PopCount())
	s.bits.ForEach(func(id int) {
		out = append(out, s.in.Name(id))
	})
	sort.Strings(out)
	return out
}

// Signature returns an allocation-free 64-bit key for the set, valid within
// one interner: equal sets always collide, unequal sets collide with FNV-64
// probability (callers confirming identity must re-check with Equal, as
// Lattice's concept index does).
func (s *Set) Signature() uint64 {
	if s == nil {
		return BitSet(nil).Signature()
	}
	return s.bits.Signature()
}

// String renders like "{a, b, c}".
func (s *Set) String() string { return "{" + strings.Join(s.Sorted(), ", ") + "}" }
