// Package fca implements Formal Concept Analysis (§III-B): formal contexts
// whose objects are traces and whose attributes are mined trace features,
// concept lattices built with Godin's incremental algorithm, and Ganter's
// batch NextClosure algorithm as the baseline it is compared against.
package fca

import (
	"sort"
	"strings"
)

// AttrSet is a set of attribute names.
type AttrSet map[string]struct{}

// NewAttrSet builds a set from the given attributes.
func NewAttrSet(attrs ...string) AttrSet {
	s := make(AttrSet, len(attrs))
	for _, a := range attrs {
		s[a] = struct{}{}
	}
	return s
}

// Add inserts a.
func (s AttrSet) Add(a string) { s[a] = struct{}{} }

// Has reports membership.
func (s AttrSet) Has(a string) bool { _, ok := s[a]; return ok }

// Len reports cardinality.
func (s AttrSet) Len() int { return len(s) }

// Clone returns a copy.
func (s AttrSet) Clone() AttrSet {
	c := make(AttrSet, len(s))
	for a := range s {
		c[a] = struct{}{}
	}
	return c
}

// Intersect returns s ∩ o.
func (s AttrSet) Intersect(o AttrSet) AttrSet {
	small, big := s, o
	if len(big) < len(small) {
		small, big = big, small
	}
	out := make(AttrSet)
	for a := range small {
		if big.Has(a) {
			out[a] = struct{}{}
		}
	}
	return out
}

// Union returns s ∪ o.
func (s AttrSet) Union(o AttrSet) AttrSet {
	out := s.Clone()
	for a := range o {
		out[a] = struct{}{}
	}
	return out
}

// SubsetOf reports s ⊆ o.
func (s AttrSet) SubsetOf(o AttrSet) bool {
	if len(s) > len(o) {
		return false
	}
	for a := range s {
		if !o.Has(a) {
			return false
		}
	}
	return true
}

// Equal reports set equality.
func (s AttrSet) Equal(o AttrSet) bool {
	return len(s) == len(o) && s.SubsetOf(o)
}

// Jaccard returns |s∩o| / |s∪o| — the similarity measure the JSM stage uses
// (1 for two empty sets, by convention).
func (s AttrSet) Jaccard(o AttrSet) float64 {
	inter := 0
	for a := range s {
		if o.Has(a) {
			inter++
		}
	}
	union := len(s) + len(o) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Sorted returns the attributes in lexicographic order.
func (s AttrSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for a := range s {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Signature returns a canonical string key for the set.
func (s AttrSet) Signature() string { return strings.Join(s.Sorted(), "\x00") }

// String renders like "{a, b, c}".
func (s AttrSet) String() string { return "{" + strings.Join(s.Sorted(), ", ") + "}" }
