// Package automaded implements an AutomaDeD-style baseline (Bronevetsky et
// al., DSN 2010, and Laguna et al., SC 2011 — the paper's references
// [28][29], discussed in §VI): each task's control flow is captured as a
// semi-Markov model — states are the functions it executes, edges carry
// the empirical transition probabilities — and outlier tasks are the ones
// whose model is unusually far from everyone else's.
//
// This gives DiffTrace a second related-work comparison point beside STAT:
// AutomaDeD sees transition *probabilities* (so it notices frequency
// anomalies STAT misses) but, unlike DiffTrace, it does not summarize
// loops, needs no second reference execution, and measures tasks against
// the current run's population rather than against a known-good run.
package automaded

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"difftrace/internal/trace"
)

// Model is one task's semi-Markov control-flow model: empirical transition
// probabilities between consecutive function calls.
type Model struct {
	ID trace.ThreadID
	// Prob maps "from\x00to" to the empirical transition probability.
	Prob map[string]float64
	// States is the set of functions observed.
	States map[string]bool
}

// key builds a transition key.
func key(from, to string) string { return from + "\x00" + to }

// BuildModel fits the model from one trace's call sequence.
func BuildModel(tr *trace.Trace, reg *trace.Registry) *Model {
	calls := tr.Names(reg)
	m := &Model{ID: tr.ID, Prob: make(map[string]float64), States: make(map[string]bool)}
	counts := make(map[string]int)
	outDegree := make(map[string]int)
	for i := 0; i < len(calls); i++ {
		m.States[calls[i]] = true
		if i+1 < len(calls) {
			counts[key(calls[i], calls[i+1])]++
			outDegree[calls[i]]++
		}
	}
	for k, c := range counts {
		from := strings.SplitN(k, "\x00", 2)[0]
		m.Prob[k] = float64(c) / float64(outDegree[from])
	}
	return m
}

// Distance measures model dissimilarity: the L1 difference of the two
// transition distributions over the union of observed transitions,
// normalized to [0, 1] (0 = identical models).
func Distance(a, b *Model) float64 {
	keys := map[string]bool{}
	for k := range a.Prob {
		keys[k] = true
	}
	for k := range b.Prob {
		keys[k] = true
	}
	if len(keys) == 0 {
		return 0
	}
	// Sorted accumulation order keeps the result exactly symmetric and
	// deterministic (map order would perturb the floating-point sums).
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	sum, norm := 0.0, 0.0
	for _, k := range sorted {
		sum += math.Abs(a.Prob[k] - b.Prob[k])
		norm += math.Max(a.Prob[k], b.Prob[k])
	}
	if norm == 0 {
		return 0
	}
	// |a-b| <= max(a,b) entrywise, so sum/norm lies in [0,1]; it is 0 for
	// identical models and 1 exactly when the transition supports are
	// disjoint.
	return sum / norm
}

// TaskScore is one task's outlier score: its mean model distance to every
// other task in the same run.
type TaskScore struct {
	ID    trace.ThreadID
	Score float64
}

// Analysis holds the per-task outlier ranking of one execution.
type Analysis struct {
	Models map[trace.ThreadID]*Model
	Tasks  []TaskScore // descending by score (most dissimilar first)
}

// Analyze fits a model per trace and ranks tasks by mean pairwise model
// distance — AutomaDeD's single-run outlier detection (no reference
// execution needed, unlike DiffTrace's relative approach).
func Analyze(set *trace.TraceSet) *Analysis {
	a := &Analysis{Models: make(map[trace.ThreadID]*Model)}
	ids := set.IDs()
	for _, id := range ids {
		a.Models[id] = BuildModel(set.Traces[id], set.Registry)
	}
	for _, id := range ids {
		total := 0.0
		for _, other := range ids {
			if other == id {
				continue
			}
			total += Distance(a.Models[id], a.Models[other])
		}
		score := 0.0
		if len(ids) > 1 {
			score = total / float64(len(ids)-1)
		}
		a.Tasks = append(a.Tasks, TaskScore{ID: id, Score: score})
	}
	sort.SliceStable(a.Tasks, func(i, j int) bool {
		if a.Tasks[i].Score != a.Tasks[j].Score {
			return a.Tasks[i].Score > a.Tasks[j].Score
		}
		return a.Tasks[i].ID.Less(a.Tasks[j].ID)
	})
	return a
}

// Outliers returns the tasks whose score exceeds the population mean by
// more than k standard deviations (AutomaDeD's unusualness threshold).
func (a *Analysis) Outliers(k float64) []trace.ThreadID {
	if len(a.Tasks) == 0 {
		return nil
	}
	mean, sd := 0.0, 0.0
	for _, t := range a.Tasks {
		mean += t.Score
	}
	mean /= float64(len(a.Tasks))
	for _, t := range a.Tasks {
		d := t.Score - mean
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(len(a.Tasks)))
	var out []trace.ThreadID
	for _, t := range a.Tasks {
		if t.Score > mean+k*sd {
			out = append(out, t.ID)
		}
	}
	return out
}

// Render prints the ranking.
func (a *Analysis) Render() string {
	var b strings.Builder
	b.WriteString("AutomaDeD-style outlier ranking (mean model distance)\n")
	for _, t := range a.Tasks {
		fmt.Fprintf(&b, "  %-6s %.4f\n", t.ID, t.Score)
	}
	return b.String()
}
