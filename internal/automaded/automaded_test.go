package automaded

import (
	"strings"
	"testing"
	"testing/quick"

	"difftrace/internal/apps/oddeven"
	"difftrace/internal/faults"
	"difftrace/internal/filter"
	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

func mkTrace(reg *trace.Registry, id trace.ThreadID, calls ...string) *trace.Trace {
	tr := &trace.Trace{ID: id}
	for _, c := range calls {
		tr.Append(reg.ID(c), trace.Enter)
	}
	return tr
}

func TestBuildModelProbabilities(t *testing.T) {
	reg := trace.NewRegistry()
	// a->b twice, a->c once: P(a->b)=2/3, P(a->c)=1/3.
	tr := mkTrace(reg, trace.TID(0, 0), "a", "b", "a", "b", "a", "c")
	m := BuildModel(tr, reg)
	if got := m.Prob[key("a", "b")]; got != 2.0/3 {
		t.Errorf("P(a->b) = %f", got)
	}
	if got := m.Prob[key("a", "c")]; got != 1.0/3 {
		t.Errorf("P(a->c) = %f", got)
	}
	if got := m.Prob[key("b", "a")]; got != 1 {
		t.Errorf("P(b->a) = %f", got)
	}
	if len(m.States) != 3 {
		t.Errorf("states = %v", m.States)
	}
}

func TestDistanceProperties(t *testing.T) {
	reg := trace.NewRegistry()
	a := BuildModel(mkTrace(reg, trace.TID(0, 0), "x", "y", "x", "y"), reg)
	b := BuildModel(mkTrace(reg, trace.TID(1, 0), "x", "y", "x", "y"), reg)
	c := BuildModel(mkTrace(reg, trace.TID(2, 0), "p", "q", "p", "q"), reg)
	if Distance(a, b) != 0 {
		t.Errorf("identical models distance = %f", Distance(a, b))
	}
	if d := Distance(a, c); d != 1 {
		t.Errorf("disjoint models distance = %f", d)
	}
	empty := BuildModel(&trace.Trace{ID: trace.TID(3, 0)}, reg)
	if Distance(empty, empty) != 0 {
		t.Error("empty-empty distance nonzero")
	}
}

func TestAnalyzeFlagsStructuralOutlier(t *testing.T) {
	s := trace.NewTraceSet()
	// Seven conforming tasks, one whose control flow loops differently.
	for i := 0; i < 7; i++ {
		s.Put(mkTrace(s.Registry, trace.TID(i, 0), "init", "work", "send", "work", "send", "fin"))
	}
	s.Put(mkTrace(s.Registry, trace.TID(7, 0), "init", "work", "work", "work", "retry", "fin"))
	a := Analyze(s)
	if a.Tasks[0].ID != trace.TID(7, 0) {
		t.Errorf("top outlier = %v\n%s", a.Tasks[0].ID, a.Render())
	}
	out := a.Outliers(1)
	if len(out) != 1 || out[0] != trace.TID(7, 0) {
		t.Errorf("outliers = %v", out)
	}
	if !strings.Contains(a.Render(), "7.0") {
		t.Error("render missing task")
	}
}

func TestAnalyzeUniformPopulation(t *testing.T) {
	s := trace.NewTraceSet()
	for i := 0; i < 4; i++ {
		s.Put(mkTrace(s.Registry, trace.TID(i, 0), "a", "b", "a", "b"))
	}
	a := Analyze(s)
	for _, task := range a.Tasks {
		if task.Score != 0 {
			t.Errorf("uniform population scored %f", task.Score)
		}
	}
	if len(a.Outliers(1)) != 0 {
		t.Error("uniform population has outliers")
	}
}

func TestSingleTask(t *testing.T) {
	s := trace.NewTraceSet()
	s.Put(mkTrace(s.Registry, trace.TID(0, 0), "a", "b"))
	a := Analyze(s)
	if len(a.Tasks) != 1 || a.Tasks[0].Score != 0 {
		t.Errorf("single task analysis = %+v", a.Tasks)
	}
}

// TestSwapBugSingleRun: AutomaDeD's single-run mode on the swapBug
// execution — rank 5's swapped Recv/Send order changes its transition
// probabilities, making it the control-flow outlier WITHOUT a reference
// run. (The paper's §VI positioning: AutomaDeD detects outlier executions
// from one run; DiffTrace diffs against a known-good one.)
func TestSwapBugSingleRun(t *testing.T) {
	tr := parlot.NewTracer(parlot.MainImage)
	plan, _ := faults.Named("swapBug")
	if _, err := oddeven.Run(oddeven.Config{Procs: 16, Seed: 5, Plan: plan, Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	set := filter.New(filter.MPIAll).ApplySet(tr.Collect())
	a := Analyze(set)
	// Rank 5 must rank above the interior ranks (edge ranks 0/15 are
	// legitimately different, so allow them ahead).
	pos := -1
	for i, task := range a.Tasks {
		if task.ID == trace.TID(5, 0) {
			pos = i
		}
	}
	if pos < 0 || pos > 2 {
		t.Errorf("rank 5 at position %d\n%s", pos, a.Render())
	}
}

// Property: Distance is symmetric, in [0,1], zero on self.
func TestQuickDistanceMetricProperties(t *testing.T) {
	pool := []string{"a", "b", "c"}
	f := func(ra, rb []uint8) bool {
		reg := trace.NewRegistry()
		mk := func(raw []uint8, p int) *Model {
			calls := make([]string, len(raw))
			for i, r := range raw {
				calls[i] = pool[int(r)%len(pool)]
			}
			return BuildModel(mkTrace(reg, trace.TID(p, 0), calls...), reg)
		}
		a, b := mk(ra, 0), mk(rb, 1)
		ab, ba := Distance(a, b), Distance(b, a)
		if ab != ba || ab < 0 || ab > 1 {
			return false
		}
		return Distance(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
