package nlr_test

import (
	"fmt"

	"difftrace/internal/nlr"
)

// Summarizing the odd/even sort's MPI calls produces Table III's compact
// NLR form: the Send/Recv exchange folds into a loop token.
func ExampleSummarize() {
	trace := []string{"MPI_Init"}
	for i := 0; i < 4; i++ {
		trace = append(trace, "MPI_Send", "MPI_Recv")
	}
	trace = append(trace, "MPI_Finalize")

	table := nlr.NewTable()
	elems := nlr.Summarize(trace, 10, table)
	fmt.Println(nlr.Tokens(elems))
	fmt.Println("L0 =", table.Describe(0))
	// Output:
	// [MPI_Init L0^4 MPI_Finalize]
	// L0 = [MPI_Send MPI_Recv]
}
