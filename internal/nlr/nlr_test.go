package nlr

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"difftrace/internal/trace"
)

func toks(elems []Element) []string { return Tokens(elems) }

func TestFlatLoopDetection(t *testing.T) {
	// a b repeated 4 times -> one loop element L0^4.
	var in []string
	for i := 0; i < 4; i++ {
		in = append(in, "a", "b")
	}
	tbl := NewTable()
	got := toks(Summarize(in, 10, tbl))
	if !reflect.DeepEqual(got, []string{"L0^4"}) {
		t.Fatalf("tokens = %v", got)
	}
	if tbl.Describe(0) != "[a b]" {
		t.Errorf("body = %s", tbl.Describe(0))
	}
}

func TestSingleSymbolRun(t *testing.T) {
	in := []string{"x", "x", "x", "x", "x", "x"}
	got := toks(Summarize(in, 10, nil))
	if !reflect.DeepEqual(got, []string{"L0^6"}) {
		t.Fatalf("tokens = %v", got)
	}
}

func TestNoLoopBelowThreeRepetitions(t *testing.T) {
	in := []string{"a", "b", "a", "b"} // only 2 reps: stays flat
	got := toks(Summarize(in, 10, nil))
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("tokens = %v", got)
	}
}

func TestNestedLoops(t *testing.T) {
	// (a b b b c) x3 -> outer loop whose body contains inner L(b)^3.
	var in []string
	for i := 0; i < 3; i++ {
		in = append(in, "a", "b", "b", "b", "c")
	}
	tbl := NewTable()
	got := toks(Summarize(in, 10, tbl))
	if len(got) != 1 || !strings.HasPrefix(got[0], "L") || !strings.HasSuffix(got[0], "^3") {
		t.Fatalf("tokens = %v", got)
	}
	// Inner body [b] and outer body [a L0^3 c] both interned.
	if tbl.Len() != 2 {
		t.Errorf("table has %d bodies, want 2: %s / %s", tbl.Len(), tbl.Describe(0), tbl.Describe(1))
	}
	if tbl.Describe(1) != "[a L0^3 c]" {
		t.Errorf("outer body = %s", tbl.Describe(1))
	}
}

func TestTableIIIOddEven(t *testing.T) {
	// The paper's §II-D example: MPI-filtered odd/even traces reduce to
	// Table III — T0/T3 iterate only twice, yet fold via the shared loop
	// table once T1/T2 reveal the bodies (two-pass SummarizeSet). Loop-ID
	// labels depend on discovery order (here the odd body is found first),
	// so we check structure, not the literal L0/L1 labels of the paper.
	set := trace.NewTraceSet()
	mk := func(p int, body []string, iters int) {
		tr := set.Get(trace.TID(p, 0))
		for _, n := range []string{"MPI_Init", "MPI_Comm_Rank", "MPI_Comm_Size"} {
			tr.Append(set.Registry.ID(n), trace.Enter)
		}
		for i := 0; i < iters; i++ {
			for _, n := range body {
				tr.Append(set.Registry.ID(n), trace.Enter)
			}
		}
		tr.Append(set.Registry.ID("MPI_Finalize"), trace.Enter)
	}
	even := []string{"MPI_Send", "MPI_Recv"}
	odd := []string{"MPI_Recv", "MPI_Send"}
	mk(0, even, 2)
	mk(1, odd, 4)
	mk(2, even, 4)
	mk(3, odd, 2)

	tbl := NewTable()
	res := SummarizeSet(set, 10, tbl)
	tok := func(p int) []string { return Tokens(res[trace.TID(p, 0)]) }

	head := []string{"MPI_Init", "MPI_Comm_Rank", "MPI_Comm_Size"}
	want := func(loop string) []string { return append(append([]string{}, head...), loop, "MPI_Finalize") }
	// Odd body discovered first (T1), so it gets L0; even body gets L1.
	if !reflect.DeepEqual(tok(0), want("L1^2")) {
		t.Errorf("T0 = %v", tok(0))
	}
	if !reflect.DeepEqual(tok(1), want("L0^4")) {
		t.Errorf("T1 = %v", tok(1))
	}
	if !reflect.DeepEqual(tok(2), want("L1^4")) {
		t.Errorf("T2 = %v", tok(2))
	}
	if !reflect.DeepEqual(tok(3), want("L0^2")) {
		t.Errorf("T3 = %v", tok(3))
	}
	if tbl.Describe(0) != "[MPI_Recv MPI_Send]" || tbl.Describe(1) != "[MPI_Send MPI_Recv]" {
		t.Errorf("bodies: %s %s", tbl.Describe(0), tbl.Describe(1))
	}
}

func TestKnownBodyFoldsAtTwoReps(t *testing.T) {
	tbl := NewTable()
	// Discover [a b] in one trace...
	Summarize([]string{"a", "b", "a", "b", "a", "b"}, 10, tbl)
	// ...then a two-rep occurrence in another folds via the heuristic.
	got := toks(Summarize([]string{"x", "a", "b", "a", "b", "y"}, 10, tbl))
	if !reflect.DeepEqual(got, []string{"x", "L0^2", "y"}) {
		t.Fatalf("tokens = %v", got)
	}
	// Without the table knowledge it must stay flat.
	got = toks(Summarize([]string{"x", "a", "b", "a", "b", "y"}, 10, NewTable()))
	if len(got) != 6 {
		t.Fatalf("unknown body folded at 2 reps: %v", got)
	}
}

func TestSharedTableAcrossTraces(t *testing.T) {
	tbl := NewTable()
	a := toks(Summarize([]string{"f", "g", "f", "g", "f", "g"}, 10, tbl))
	b := toks(Summarize([]string{"x", "f", "g", "f", "g", "f", "g", "y"}, 10, tbl))
	if a[0] != "L0^3" {
		t.Fatalf("a = %v", a)
	}
	if !reflect.DeepEqual(b, []string{"x", "L0^3", "y"}) {
		t.Fatalf("same loop body got different ID in second trace: %v", b)
	}
}

func TestBodyLongerThanKNotFolded(t *testing.T) {
	// Body length 4 with K=3 must not fold; with K=4 it must.
	body := []string{"a", "b", "c", "d"}
	var in []string
	for i := 0; i < 3; i++ {
		in = append(in, body...)
	}
	if got := toks(Summarize(in, 3, nil)); len(got) != len(in) {
		t.Errorf("K=3 folded a 4-long body: %v", got)
	}
	if got := toks(Summarize(in, 4, nil)); !reflect.DeepEqual(got, []string{"L0^3"}) {
		t.Errorf("K=4 tokens = %v", got)
	}
}

func TestLoopExtension(t *testing.T) {
	// 7 reps: fold at 3, then extend 4 more times -> count 7 (the paper's
	// swapBug trace shows L1^7 after seven iterations).
	var in []string
	for i := 0; i < 7; i++ {
		in = append(in, "MPI_Recv", "MPI_Send")
	}
	got := toks(Summarize(in, 10, nil))
	if !reflect.DeepEqual(got, []string{"L0^7"}) {
		t.Fatalf("tokens = %v", got)
	}
}

func TestSwapBugShape(t *testing.T) {
	// L1^7 then L0^9: the paper's Figure 5 shape for swapBug on rank 5.
	var in []string
	for i := 0; i < 7; i++ {
		in = append(in, "MPI_Recv", "MPI_Send")
	}
	for i := 0; i < 9; i++ {
		in = append(in, "MPI_Send", "MPI_Recv")
	}
	tbl := NewTable()
	got := toks(Summarize(in, 10, tbl))
	// The boundary Recv-Send-Send-Recv region allows several equally valid
	// summaries; what matters is that two distinct loop bodies emerge with
	// total expansion preserved (checked by losslessness below). Check the
	// leading token exactly.
	if got[0] != "L0^7" {
		t.Fatalf("tokens = %v", got)
	}
	if exp := Expand(Summarize(in, 10, NewTable())); !reflect.DeepEqual(exp, in) {
		t.Fatal("expansion mismatch")
	}
}

func TestExpandLossless(t *testing.T) {
	in := []string{"s", "a", "b", "a", "b", "a", "b", "t", "t", "t", "u"}
	elems := Summarize(in, 10, nil)
	if got := Expand(elems); !reflect.DeepEqual(got, in) {
		t.Fatalf("Expand = %v, want %v", got, in)
	}
}

func TestSummarizeTraceWithExits(t *testing.T) {
	reg := trace.NewRegistry()
	tr := &trace.Trace{ID: trace.TID(0, 0)}
	for i := 0; i < 3; i++ {
		tr.Append(reg.ID("f"), trace.Enter)
		tr.Append(reg.ID("f"), trace.Exit)
	}
	elems := SummarizeTrace(tr, reg, 10, nil)
	if len(elems) != 1 || elems[0].Loop == nil || elems[0].Loop.Count != 3 {
		t.Fatalf("elements = %v", Tokens(elems))
	}
	body := elems[0].Loop.Body
	if body[0].Sym != "f" || body[1].Sym != "ret:f" {
		t.Errorf("body = %v", Tokens(body))
	}
}

func TestTableBodyBounds(t *testing.T) {
	tbl := NewTable()
	if tbl.Body(0) != nil || tbl.Body(-1) != nil {
		t.Error("out-of-range Body should be nil")
	}
	if !strings.Contains(tbl.Describe(3), "?") {
		t.Error("Describe of unknown ID should mark unknown")
	}
}

func TestReductionFactor(t *testing.T) {
	var in []string
	for i := 0; i < 100; i++ {
		in = append(in, "a", "b")
	}
	elems := Summarize(in, 10, nil)
	if r := Reduction(len(in), elems); r != 200 {
		t.Errorf("reduction = %f, want 200", r)
	}
	if r := Reduction(5, nil); r != 1 {
		t.Errorf("empty reduction = %f", r)
	}
}

func TestHigherKReducesMore(t *testing.T) {
	// Long-period pattern: higher K compresses it, low K cannot — the §V
	// K=10 vs K=50 observation.
	rng := rand.New(rand.NewSource(42))
	body := make([]string, 30)
	for i := range body {
		body[i] = string(rune('a' + rng.Intn(26)))
	}
	// ensure the body itself has no 3-fold repetition by construction noise
	var in []string
	for i := 0; i < 10; i++ {
		in = append(in, body...)
	}
	low := len(Summarize(in, 10, nil))
	high := len(Summarize(in, 50, nil))
	if high >= low {
		t.Errorf("K=50 (%d elements) should compress more than K=10 (%d)", high, low)
	}
}

// Property 1: NLR is lossless for arbitrary small-alphabet streams.
func TestQuickLossless(t *testing.T) {
	f := func(stream []uint8, k uint8) bool {
		in := make([]string, len(stream))
		for i, s := range stream {
			in[i] = string(rune('a' + int(s)%4))
		}
		K := int(k)%12 + 1
		elems := Summarize(in, K, nil)
		got := Expand(elems)
		if len(got) != len(in) {
			return false
		}
		for i := range got {
			if got[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property 2: summarized length never exceeds input length.
func TestQuickNeverGrows(t *testing.T) {
	f := func(stream []uint8) bool {
		in := make([]string, len(stream))
		for i, s := range stream {
			in[i] = string(rune('a' + int(s)%3))
		}
		return len(Summarize(in, 10, nil)) <= len(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property 3: interning the same body twice yields the same ID (table is a
// proper hash-consing table).
func TestQuickTableIdempotent(t *testing.T) {
	f := func(names []uint8) bool {
		if len(names) == 0 {
			return true
		}
		body := make([]Element, len(names))
		for i, n := range names {
			body[i] = Element{Sym: string(rune('a' + int(n)%5))}
		}
		tbl := NewTable()
		a := tbl.Intern(body)
		b := tbl.Intern(body)
		return a == b && tbl.Len() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSummarizeLoopy(b *testing.B) {
	var in []string
	for i := 0; i < 1000; i++ {
		in = append(in, "a", "b", "c")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Summarize(in, 10, nil)
	}
}

func TestTripleNestedLoops(t *testing.T) {
	// ((a b^3 c)^3 d)^3 — three levels of nesting, all folded ("restarted
	// ... for depth-2 loops and so on", §III-A).
	var mid []string
	for i := 0; i < 3; i++ {
		mid = append(mid, "a", "b", "b", "b", "c")
	}
	var outer []string
	for i := 0; i < 3; i++ {
		outer = append(outer, mid...)
		outer = append(outer, "d")
	}
	tbl := NewTable()
	elems := Summarize(outer, 10, tbl)
	if len(elems) != 1 || elems[0].Loop == nil || elems[0].Loop.Count != 3 {
		t.Fatalf("outer = %v", Tokens(elems))
	}
	// Three distinct bodies interned: [b], [a L^3 c], [L^3 d].
	if tbl.Len() != 3 {
		t.Fatalf("table = %d bodies", tbl.Len())
	}
	if got := Expand(elems); len(got) != len(outer) {
		t.Fatalf("lossless expansion failed: %d vs %d", len(got), len(outer))
	}
	// The outermost body references the middle loop by ID.
	if tbl.Describe(2) != "[L1^3 d]" {
		t.Errorf("outer body = %s", tbl.Describe(2))
	}
}
