// Package nlr implements DiffTrace's Nested Loop Recognition (§III-A),
// adapted from Ketterlin & Clauss' trace-compression algorithm and Kobayashi
// & MacDougall's bottom-up loop-nest construction.
//
// The summarizer pushes trace entries (function names, or IDs of already
// detected loops) onto a stack of elements and, after every push, runs the
// paper's Reduce procedure (Procedure 1):
//
//   - if the top 3 b-long element groups are pairwise isomorphic for some
//     b ≤ K, they are folded into a loop element with body b and count 3;
//   - if the element at depth i is a loop whose body is isomorphic to the
//     top i-1 elements, the loop absorbs them and its count increments.
//
// Every distinct loop body is interned in a Table and given a unique ID
// (L0, L1, ...), shared across all traces of an execution so that the same
// loop detected in different traces (or in the normal and faulty runs) gets
// the same name — the property Tables III/IV and the FCA stage rely on.
//
// Complexity is Θ(K²·N) for a trace of N entries, as stated in the paper.
package nlr

import (
	"fmt"
	"strings"
	"sync"

	"difftrace/internal/obs"
	"difftrace/internal/trace"
)

// DefaultK is the window constant used throughout the paper's experiments
// ("we set the NLR constant K to 10 for all experiments").
const DefaultK = 10

// Element is one entry of the NLR stack / summarized sequence: either a
// plain symbol (function name or loop-ID token) or a detected loop.
type Element struct {
	Sym  string // valid when Loop == nil
	Loop *Loop
}

// Loop is a recognized repetition: Body repeated Count times. ID is the
// table-assigned identity of Body (counts are not part of the identity:
// "L0^2" and "L0^4" are the same loop body looping differently, exactly as
// in Table III).
type Loop struct {
	Body  []Element
	Count int
	ID    int
}

// Token renders an element the way the paper prints NLR sequences:
// a bare function name, or "L<id>^<count>".
func (e Element) Token() string {
	if e.Loop == nil {
		return e.Sym
	}
	return fmt.Sprintf("L%d^%d", e.Loop.ID, e.Loop.Count)
}

// iso reports structural isomorphism between two elements. Loops are
// isomorphic when they repeat the same interned body the same number of
// times; the Table guarantees body equality ⇔ ID equality.
func iso(a, b Element) bool {
	if (a.Loop == nil) != (b.Loop == nil) {
		return false
	}
	if a.Loop == nil {
		return a.Sym == b.Sym
	}
	return a.Loop.ID == b.Loop.ID && a.Loop.Count == b.Loop.Count
}

func isoSlice(a, b []Element) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !iso(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Table interns loop bodies and assigns stable IDs in discovery order.
// One Table is shared by every trace of an execution pair (normal+faulty),
// mirroring the paper's global hash table of distinct loop bodies.
// It is safe for concurrent use.
//
// A Table can also be an *overlay* (NewOverlay): reads fall through to a
// frozen base table while new bodies are interned locally. Overlays are how
// the parallel pipeline keeps loop-ID assignment deterministic: workers
// never race on the shared table, and their local discoveries are merged
// back (Absorb) at a barrier in a canonical order that does not depend on
// scheduling.
type Table struct {
	mu     sync.Mutex
	ids    map[string]int
	bodies [][]Element

	// Overlay state. base is treated as frozen for the overlay's lifetime:
	// the first horizon IDs belong to it, locally interned bodies get IDs
	// from horizon upward.
	base    *Table
	horizon int

	// Interning hit/miss counters (Observe). Nil-safe handles: an
	// unobserved table counts into nothing at no cost beyond a nil check.
	obsHit, obsMiss *obs.Counter
}

// Observe routes the table's interning accounting — "nlr.intern.hit" and
// "nlr.intern.miss" counters, whose ratio is the paper's cross-trace
// loop-sharing measure — into r. Overlays inherit their base's counters.
// Call before the table is shared across goroutines.
func (t *Table) Observe(r *obs.Run) {
	t.obsHit = r.Counter("nlr.intern.hit")
	t.obsMiss = r.Counter("nlr.intern.miss")
}

// NewTable returns an empty loop table.
func NewTable() *Table { return &Table{ids: make(map[string]int)} }

// NewOverlay returns an overlay over base: Intern and Has see everything
// base currently holds (IDs < base.Len() are base IDs), while bodies not in
// base are interned locally with IDs from base.Len() upward. The caller
// must not mutate base while the overlay is in use; overlays of overlays
// are not supported.
func NewOverlay(base *Table) *Table {
	if base.base != nil {
		//lint:allow panicdiscipline caller-bug invariant: no trace input can construct a nested overlay, only pipeline code can, and silently flattening one would corrupt ID horizons
		panic("nlr: overlay of an overlay")
	}
	return &Table{
		ids: make(map[string]int), base: base, horizon: base.Len(),
		obsHit: base.obsHit, obsMiss: base.obsMiss,
	}
}

// bodySig canonically renders a body. Nested loops already carry IDs
// (loops are interned bottom-up), so the signature is just the token join.
func bodySig(body []Element) string {
	toks := make([]string, len(body))
	for i, e := range body {
		toks[i] = e.Token()
	}
	return strings.Join(toks, "\x00")
}

// hasLocalRef reports whether body references any overlay-local loop ID
// (>= horizon). Such a body cannot exist in the frozen base — base bodies
// only reference IDs below the horizon — so base lookups are skipped.
func (t *Table) hasLocalRef(body []Element) bool {
	for _, e := range body {
		if e.Loop != nil && e.Loop.ID >= t.horizon {
			return true
		}
	}
	return false
}

// Intern returns the ID for body, assigning the next free ID on first sight.
func (t *Table) Intern(body []Element) int {
	sig := bodySig(body)
	if t.base != nil && !t.hasLocalRef(body) {
		if id, ok := t.base.lookup(sig); ok {
			t.obsHit.Add(1)
			return id
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[sig]; ok {
		t.obsHit.Add(1)
		return id
	}
	t.obsMiss.Add(1)
	id := t.horizon + len(t.bodies)
	t.ids[sig] = id
	cp := make([]Element, len(body))
	copy(cp, body)
	t.bodies = append(t.bodies, cp)
	return id
}

// lookup reports the ID for an already-interned signature.
func (t *Table) lookup(sig string) (int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id, ok := t.ids[sig]
	return id, ok
}

// Has reports whether body is already interned, without interning it.
// The Reduce procedure uses this as the paper's hash-table heuristic:
// a body already discovered elsewhere folds after only two repetitions
// (Table III's T0/T3 loop just twice yet are summarized as L^2).
func (t *Table) Has(body []Element) bool {
	sig := bodySig(body)
	if t.base != nil && !t.hasLocalRef(body) {
		if _, ok := t.base.lookup(sig); ok {
			return true
		}
	}
	_, ok := t.lookup(sig)
	return ok
}

// Len reports the number of distinct loop bodies visible: for an overlay
// that includes everything below the horizon plus the local discoveries.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.horizon + len(t.bodies)
}

// Body returns (a copy of) the body for id; nil if unknown.
func (t *Table) Body(id int) []Element {
	if t.base != nil && id >= 0 && id < t.horizon {
		return t.base.Body(id)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	i := id - t.horizon
	if i < 0 || i >= len(t.bodies) {
		return nil
	}
	out := make([]Element, len(t.bodies[i]))
	copy(out, t.bodies[i])
	return out
}

// Absorb merges an overlay's local discoveries into t (the overlay's base)
// and returns the remap from overlay-local IDs to their canonical base IDs.
// Local bodies are absorbed in ascending local-ID order; since a nested
// local loop is always interned before any body containing it, every local
// reference inside a body already has a remap entry when the body is
// processed. Calling Absorb on overlays in a canonical order is what makes
// the merged ID assignment independent of worker scheduling. IDs that land
// unchanged are omitted from the remap, so an empty map means the overlay's
// sequences are already in canonical form.
func (t *Table) Absorb(o *Table) map[int]int {
	if o.base != t {
		//lint:allow panicdiscipline caller-bug invariant: absorbing a foreign overlay would silently remap IDs against the wrong horizon; unreachable from any input
		panic("nlr: Absorb of a foreign overlay")
	}
	o.mu.Lock()
	local := o.bodies
	o.mu.Unlock()
	remap := make(map[int]int)
	for i, body := range local {
		oldID := o.horizon + i
		newID := t.Intern(RemapElements(body, remap))
		if newID != oldID {
			remap[oldID] = newID
		}
	}
	return remap
}

// RemapElements rewrites loop IDs in a summarized sequence according to
// remap (IDs absent from the map are kept). With an empty remap the input
// is returned as-is; otherwise loop elements are rebuilt so shared bodies
// are never mutated in place.
func RemapElements(elems []Element, remap map[int]int) []Element {
	if len(remap) == 0 {
		return elems
	}
	out := make([]Element, len(elems))
	for i, e := range elems {
		if e.Loop == nil {
			out[i] = e
			continue
		}
		id := e.Loop.ID
		if nid, ok := remap[id]; ok {
			id = nid
		}
		out[i] = Element{Loop: &Loop{
			Body:  RemapElements(e.Loop.Body, remap),
			Count: e.Loop.Count,
			ID:    id,
		}}
	}
	return out
}

// Describe renders the loop body for id like "[MPI_Send MPI_Recv]",
// the notation §II-D uses to explain L0 and L1.
func (t *Table) Describe(id int) string {
	body := t.Body(id)
	if body == nil {
		return fmt.Sprintf("L%d=?", id)
	}
	toks := make([]string, len(body))
	for i, e := range body {
		toks[i] = e.Token()
	}
	return "[" + strings.Join(toks, " ") + "]"
}

// Summarizer runs the online Reduce procedure over one token stream.
type Summarizer struct {
	K     int
	Table *Table
	stack []Element
}

// NewSummarizer returns a Summarizer with window constant k (DefaultK if
// k <= 0) interning loop bodies into table (a fresh one if nil).
func NewSummarizer(k int, table *Table) *Summarizer {
	if k <= 0 {
		k = DefaultK
	}
	if table == nil {
		table = NewTable()
	}
	return &Summarizer{K: k, Table: table}
}

// Push feeds the next trace entry and reduces.
func (s *Summarizer) Push(sym string) {
	s.push(Element{Sym: sym}, false)
}

func (s *Summarizer) push(e Element, allowKnownFold bool) {
	s.stack = append(s.stack, e)
	s.reduce(allowKnownFold)
}

// reduce is Procedure 1, iterated to fixpoint. For i = 1..3K with b = i/3
// it checks (a) the top three b-long groups folding into a new loop and
// (b) a loop at depth i extending over the top i-1 elements. When
// allowKnownFold is set (finalization only — see Finalize), an additional
// rule folds two adjacent repetitions of a body already in the loop table.
func (s *Summarizer) reduce(allowKnownFold bool) {
	for {
		if !s.reduceOnce(allowKnownFold) {
			return
		}
	}
}

func (s *Summarizer) reduceOnce(allowKnownFold bool) bool {
	n := len(s.stack)
	for i := 1; i <= 3*s.K; i++ {
		b := i / 3
		// Rule 1: fold — top 3 groups of b elements each are isomorphic.
		if b >= 1 && i == 3*b && n >= 3*b {
			g2 := s.stack[n-b:]
			g1 := s.stack[n-2*b : n-b]
			g0 := s.stack[n-3*b : n-2*b]
			if isoSlice(g0, g1) && isoSlice(g1, g2) {
				body := make([]Element, b)
				copy(body, g2)
				id := s.Table.Intern(body)
				s.stack = s.stack[:n-3*b]
				s.stack = append(s.stack, Element{Loop: &Loop{Body: body, Count: 3, ID: id}})
				return true
			}
		}
		// Rule 1b: known-body fold — the top 2 groups of b2 elements are
		// isomorphic and the body is already in the loop table (§III-A's
		// cross-trace heuristic): fold with count 2. Restricted to the
		// finalization pass: firing online would mis-parse phase-shifted
		// loops ((S R)^4 would fold as S (R S)^3 R if [R S] is known).
		if b2 := i / 2; allowKnownFold && b2 >= 1 && i == 2*b2 && b2 <= s.K && n >= 2*b2 {
			g1 := s.stack[n-b2:]
			g0 := s.stack[n-2*b2 : n-b2]
			if isoSlice(g0, g1) && s.Table.Has(g1) {
				body := make([]Element, b2)
				copy(body, g1)
				id := s.Table.Intern(body)
				s.stack = s.stack[:n-2*b2]
				s.stack = append(s.stack, Element{Loop: &Loop{Body: body, Count: 2, ID: id}})
				return true
			}
		}
		// Rule 2: extend — S[i] is a loop whose body matches the top i-1
		// elements (body length i-1).
		if i >= 2 && n >= i {
			el := &s.stack[n-i]
			if el.Loop != nil && len(el.Loop.Body) == i-1 && isoSlice(el.Loop.Body, s.stack[n-i+1:]) {
				el.Loop = &Loop{Body: el.Loop.Body, Count: el.Loop.Count + 1, ID: el.Loop.ID}
				s.stack = s.stack[:n-i+1]
				return true
			}
		}
	}
	return false
}

// Finalize runs the end-of-trace cleanup: the summarized sequence is
// re-reduced with the known-body heuristic enabled, folding two-repetition
// occurrences of loop bodies discovered elsewhere (or earlier in this
// trace). Called once after the last Push; Summarize does it automatically.
func (s *Summarizer) Finalize() {
	old := s.stack
	s.stack = make([]Element, 0, len(old))
	for _, e := range old {
		s.push(e, true)
	}
}

// Elements returns the current summarized sequence (a copy).
func (s *Summarizer) Elements() []Element {
	out := make([]Element, len(s.stack))
	copy(out, s.stack)
	return out
}

// Tokens renders the current sequence as NLR tokens (Table III style).
func (s *Summarizer) Tokens() []string { return Tokens(s.stack) }

// Tokens renders a summarized element sequence as tokens.
func Tokens(elems []Element) []string {
	out := make([]string, len(elems))
	for i, e := range elems {
		out[i] = e.Token()
	}
	return out
}

// Expand undoes the summarization, reproducing the original token stream —
// NLR is a lossless abstraction (§II-A: "serves as a lossless abstraction").
//
// Expand materializes the full expansion and is for tests and reference
// code only: the analysis pipeline must stay memory-bounded by the
// summarized form (that is the point of Config.Streaming). The
// expanddiscipline lint check rejects production calls; a deliberate
// exception needs //lint:allow expanddiscipline with a reason.
func Expand(elems []Element) []string {
	var out []string
	var rec func(es []Element)
	rec = func(es []Element) {
		for _, e := range es {
			if e.Loop == nil {
				out = append(out, e.Sym)
				continue
			}
			for i := 0; i < e.Loop.Count; i++ {
				rec(e.Loop.Body)
			}
		}
	}
	rec(elems)
	return out
}

// ExpandedLen returns the number of tokens Expand would produce, computed
// by loop arithmetic over the summarized form — O(summary size), no
// materialization. The query and divergence layers use it to reason about
// expanded event positions while staying inside the streaming memory
// contract.
func ExpandedLen(elems []Element) int64 {
	var n int64
	for _, e := range elems {
		if e.Loop == nil {
			n++
			continue
		}
		n += int64(e.Loop.Count) * ExpandedLen(e.Loop.Body)
	}
	return n
}

// Summarize runs the full pass over tokens (including finalization) and
// returns the element sequence.
func Summarize(tokens []string, k int, table *Table) []Element {
	s := NewSummarizer(k, table)
	for _, t := range tokens {
		s.Push(t)
	}
	s.Finalize()
	return s.Elements()
}

// SummarizeTrace summarizes the *call* events of tr (returns are assumed to
// be filtered already; any remaining exits are rendered as "ret:<name>"
// tokens so the abstraction stays lossless).
func SummarizeTrace(tr *trace.Trace, reg *trace.Registry, k int, table *Table) []Element {
	s := NewSummarizer(k, table)
	for _, e := range tr.Events {
		name := reg.Name(e.Func)
		if e.Kind == trace.Exit {
			name = "ret:" + name
		}
		s.Push(name)
	}
	s.Finalize()
	return s.Elements()
}

// SummarizeSet summarizes every trace of set in deterministic ID order with
// two passes: the first pass populates the shared loop table, the second
// re-summarizes each trace so that loops discovered late (in another trace)
// still fold in traces processed earlier — this is what lets Table III
// summarize T0's two iterations as L^2 after T2 revealed the body.
// Exits surviving the filter are rendered as "ret:<name>" tokens.
func SummarizeSet(set *trace.TraceSet, k int, table *Table) map[trace.ThreadID][]Element {
	if table == nil {
		table = NewTable()
	}
	for _, id := range set.IDs() {
		SummarizeTrace(set.Traces[id], set.Registry, k, table)
	}
	out := make(map[trace.ThreadID][]Element, len(set.Traces))
	for _, id := range set.IDs() {
		out[id] = SummarizeTrace(set.Traces[id], set.Registry, k, table)
	}
	return out
}

// Reduction reports the size reduction factor |input| / |summarized| for a
// token stream (the §V statistic: ×1.92 at K=10, ×16.74 at K=50 on LULESH).
func Reduction(inputLen int, elems []Element) float64 {
	if len(elems) == 0 {
		return 1
	}
	return float64(inputLen) / float64(len(elems))
}
