package nlr

// Streaming summarization. The Summarizer has always been an online
// algorithm — Push consumes one token and reduces to fixpoint, holding only
// the folded stack — so the streaming pipeline needs no second
// implementation, just an entry point that pulls tokens instead of
// expecting a materialized slice. Peak memory is the summarized stack, not
// the token count: a loop of a billion iterations occupies one stack
// element while it extends.
//
// Expand, the inverse, materializes the full token stream and is therefore
// confined to tests and reference code; difftracelint's expanddiscipline
// check proves no production path calls it.

// SummarizeStream runs the full NLR pass (including finalization) over a
// pulled token stream: next returns one token at a time and reports
// exhaustion. It is definitionally equivalent to Summarize on the expanded
// slice — both feed the same tokens through the same Summarizer — and
// FuzzStreamSummarize pins that equivalence (same elements, same loop-table
// contents) against arbitrary streams.
func SummarizeStream(next func() (string, bool), k int, table *Table) []Element {
	s := NewSummarizer(k, table)
	for tok, ok := next(); ok; tok, ok = next() {
		s.Push(tok)
	}
	s.Finalize()
	return s.Elements()
}
