package nlr

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

func syms(names ...string) []Element {
	out := make([]Element, len(names))
	for i, n := range names {
		out[i] = Element{Sym: n}
	}
	return out
}

func loopElem(t *Table, count int, body ...Element) Element {
	return Element{Loop: &Loop{Body: body, Count: count, ID: t.Intern(body)}}
}

func TestOverlayReadsThroughToBase(t *testing.T) {
	base := NewTable()
	ab := syms("A", "B")
	baseID := base.Intern(ab)

	o := NewOverlay(base)
	if !o.Has(ab) {
		t.Fatal("overlay does not see base body")
	}
	if got := o.Intern(ab); got != baseID {
		t.Fatalf("overlay Intern of base body = %d, want base ID %d", got, baseID)
	}
	if o.Len() != base.Len() {
		t.Fatalf("fresh overlay Len = %d, want %d", o.Len(), base.Len())
	}
	if base.Len() != 1 {
		t.Fatalf("overlay reads mutated base: Len = %d", base.Len())
	}
	if got := Tokens(o.Body(baseID)); strings.Join(got, " ") != "A B" {
		t.Fatalf("overlay Body(base id) = %v", got)
	}
}

func TestOverlayLocalIDsStartAtHorizon(t *testing.T) {
	base := NewTable()
	base.Intern(syms("A"))
	base.Intern(syms("B"))

	o := NewOverlay(base)
	id := o.Intern(syms("C"))
	if id != 2 {
		t.Fatalf("first local ID = %d, want horizon 2", id)
	}
	if again := o.Intern(syms("C")); again != id {
		t.Fatalf("re-Intern = %d, want %d", again, id)
	}
	if o.Len() != 3 {
		t.Fatalf("overlay Len = %d, want 3", o.Len())
	}
	if base.Len() != 2 {
		t.Fatalf("base mutated: Len = %d", base.Len())
	}
	if got := Tokens(o.Body(id)); strings.Join(got, " ") != "C" {
		t.Fatalf("overlay Body(local) = %v", got)
	}
	if base.Body(id) != nil {
		t.Fatal("base resolves an overlay-local ID")
	}
}

// A body referencing an overlay-local loop must never consult the base:
// local IDs are outside the base's ID space, so a matching signature in
// the base would be a collision, not an identity.
func TestOverlayLocalRefSkipsBase(t *testing.T) {
	base := NewTable()
	base.Intern(syms("A"))
	o := NewOverlay(base)
	inner := loopElem(o, 3, syms("C")...) // local ID 1
	if inner.Loop.ID != 1 {
		t.Fatalf("inner local ID = %d, want 1", inner.Loop.ID)
	}
	body := []Element{{Sym: "X"}, inner}
	if o.Has(body) {
		t.Fatal("Has true for never-interned local-ref body")
	}
	id := o.Intern(body)
	if id != 2 {
		t.Fatalf("local-ref body ID = %d, want 2", id)
	}
}

func TestAbsorbCanonicalOrder(t *testing.T) {
	base := NewTable()
	base.Intern(syms("A")) // ID 0

	// Two overlays built from the same frozen base, discovering different
	// (and one shared) bodies.
	o1 := NewOverlay(base)
	o2 := NewOverlay(base)
	bID := o1.Intern(syms("B"))       // local 1 in o1
	cID := o2.Intern(syms("C"))       // local 1 in o2
	bID2 := o2.Intern(syms("B"))      // local 2 in o2 — same body as o1's
	nested := loopElem(o2, 4, Element{Sym: "D"}) // local 3 in o2
	outerBody := []Element{{Sym: "E"}, nested}
	outerID := o2.Intern(outerBody) // local 4 in o2, references local 3

	r1 := t1Absorb(t, base, o1)
	if len(r1) != 0 {
		t.Fatalf("first overlay absorbed with remap %v, want identity", r1)
	}
	if got := base.Len(); got != 2 {
		t.Fatalf("base Len after first absorb = %d, want 2", got)
	}
	_ = bID

	r2 := t1Absorb(t, base, o2)
	// o2's C (local 1) keeps slot... base had [A B]; C interns to 2, so
	// local 1 → 2; B (local 2) dedups onto base's 1; D-loop (local 3) → 3;
	// outer (local 4, references 3) → 4.
	want := map[int]int{1: 2, 2: 1, 4: 4, 3: 3}
	// Entries equal to their key are omitted from the remap.
	for k, v := range want {
		if k == v {
			delete(want, k)
		}
	}
	if !reflect.DeepEqual(r2, want) {
		t.Fatalf("second absorb remap = %v, want %v", r2, want)
	}
	if got := base.Len(); got != 5 {
		t.Fatalf("base Len after both absorbs = %d, want 5", got)
	}
	_ = cID
	_ = bID2
	// The absorbed outer body must reference D's canonical ID.
	canonOuter := base.Body(4)
	if canonOuter == nil || canonOuter[1].Loop == nil || canonOuter[1].Loop.ID != 3 {
		t.Fatalf("absorbed nested reference not remapped: %v", Tokens(canonOuter))
	}
	_ = outerID
}

func t1Absorb(t *testing.T, base, o *Table) map[int]int {
	t.Helper()
	return base.Absorb(o)
}

// Absorbing overlays in the same canonical order yields the same base table
// regardless of which overlay did its work first (scheduling independence).
func TestAbsorbOrderDeterminism(t *testing.T) {
	build := func(firstWork int) *Table {
		base := NewTable()
		base.Intern(syms("init"))
		overlays := []*Table{NewOverlay(base), NewOverlay(base)}
		work := []func(o *Table){
			func(o *Table) { o.Intern(syms("P", "Q")); o.Intern(syms("R")) },
			func(o *Table) { o.Intern(syms("R")); o.Intern(syms("S", "T")) },
		}
		// Simulate scheduling: the "firstWork" overlay runs first; absorb
		// order is always canonical (index order).
		work[firstWork](overlays[firstWork])
		work[1-firstWork](overlays[1-firstWork])
		for _, o := range overlays {
			base.Absorb(o)
		}
		return base
	}
	a, b := build(0), build(1)
	if a.Len() != b.Len() {
		t.Fatalf("table sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for id := 0; id < a.Len(); id++ {
		if !reflect.DeepEqual(a.Body(id), b.Body(id)) {
			t.Fatalf("body %d differs: %v vs %v", id, Tokens(a.Body(id)), Tokens(b.Body(id)))
		}
	}
}

func TestRemapElements(t *testing.T) {
	inner := Element{Loop: &Loop{Body: syms("x"), Count: 2, ID: 7}}
	elems := []Element{{Sym: "a"}, {Loop: &Loop{Body: []Element{{Sym: "b"}, inner}, Count: 3, ID: 9}}}

	if got := RemapElements(elems, nil); &got[0] != &elems[0] {
		t.Fatal("empty remap should return input unchanged")
	}
	out := RemapElements(elems, map[int]int{7: 1, 9: 0})
	if out[1].Loop.ID != 0 {
		t.Fatalf("outer ID = %d, want 0", out[1].Loop.ID)
	}
	if out[1].Loop.Body[1].Loop.ID != 1 {
		t.Fatalf("nested ID = %d, want 1", out[1].Loop.Body[1].Loop.ID)
	}
	// Original untouched (loops rebuilt, not mutated).
	if elems[1].Loop.ID != 9 || elems[1].Loop.Body[1].Loop.ID != 7 {
		t.Fatal("RemapElements mutated its input")
	}
}

// Concurrent overlays over one frozen base must be race-free (run with
// -race): every worker reads the base and writes only its own overlay.
func TestConcurrentOverlays(t *testing.T) {
	base := NewTable()
	base.Intern(syms("MPI_Init"))
	base.Intern(syms("MPI_Send", "MPI_Recv"))

	const workers = 8
	overlays := make([]*Table, workers)
	for i := range overlays {
		overlays[i] = NewOverlay(base)
	}
	var wg sync.WaitGroup
	for i, o := range overlays {
		wg.Add(1)
		go func(i int, o *Table) {
			defer wg.Done()
			toks := []string{"A", "B", "A", "B", "A", "B", "C"}
			if i%2 == 1 {
				toks = append(toks, "W", "W", "W")
			}
			Summarize(toks, 4, o)
			o.Intern(syms("shared"))
		}(i, o)
	}
	wg.Wait()
	for _, o := range overlays {
		base.Absorb(o)
	}
	if !base.Has(syms("shared")) {
		t.Fatal("absorbed body missing from base")
	}
	if !base.Has(syms("A", "B")) {
		t.Fatal("summarized loop body missing from base")
	}
	// No duplicate signatures in the merged table.
	seen := map[string]int{}
	for id := 0; id < base.Len(); id++ {
		sig := bodySig(base.Body(id))
		if prev, dup := seen[sig]; dup {
			t.Fatalf("duplicate body: id %d and %d both %q", prev, id, sig)
		}
		seen[sig] = id
	}
}
