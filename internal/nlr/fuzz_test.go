package nlr

import "testing"

// FuzzSummarizeLossless: summarization of any token stream expands back to
// the original, at every window constant.
func FuzzSummarizeLossless(f *testing.F) {
	f.Add([]byte("abcabcabc"), uint8(10))
	f.Add([]byte(""), uint8(1))
	f.Add([]byte("aaaaaaaaaaaaaaaa"), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, k uint8) {
		toks := make([]string, len(data))
		for i, b := range data {
			toks[i] = string(rune('a' + int(b)%5))
		}
		K := int(k)%20 + 1
		elems := Summarize(toks, K, nil)
		got := Expand(elems)
		if len(got) != len(toks) {
			t.Fatalf("expand len %d != %d", len(got), len(toks))
		}
		for i := range got {
			if got[i] != toks[i] {
				t.Fatalf("token %d: %q != %q", i, got[i], toks[i])
			}
		}
		if len(elems) > len(toks) {
			t.Fatal("summary longer than input")
		}
	})
}

// FuzzStreamSummarize: streaming NLR over a pulled token stream matches
// Summarize on the materialized expansion — same summarized sequence and
// the same loop table, at every window constant. This is the equivalence
// the streaming analysis path (core.Config.Streaming) rests on.
func FuzzStreamSummarize(f *testing.F) {
	f.Add([]byte("abcabcabc"), uint8(10))
	f.Add([]byte(""), uint8(1))
	f.Add([]byte("aaaaaaaaaaaaaaaa"), uint8(3))
	f.Add([]byte("ababababcdcdcdcdabab"), uint8(2))
	f.Add([]byte("aabbaabbaabbccddccdd"), uint8(6))
	f.Fuzz(func(t *testing.T, data []byte, k uint8) {
		toks := make([]string, len(data))
		for i, b := range data {
			toks[i] = string(rune('a' + int(b)%5))
		}
		K := int(k)%20 + 1

		batchTable := NewTable()
		want := Summarize(toks, K, batchTable)

		streamTable := NewTable()
		i := 0
		got := SummarizeStream(func() (string, bool) {
			if i >= len(toks) {
				return "", false
			}
			i++
			return toks[i-1], true
		}, K, streamTable)

		wantToks, gotToks := Tokens(want), Tokens(got)
		if len(gotToks) != len(wantToks) {
			t.Fatalf("element count: stream %d != batch %d", len(gotToks), len(wantToks))
		}
		for j := range gotToks {
			if gotToks[j] != wantToks[j] {
				t.Fatalf("element %d: stream %q != batch %q", j, gotToks[j], wantToks[j])
			}
		}
		if streamTable.Len() != batchTable.Len() {
			t.Fatalf("table size: stream %d != batch %d", streamTable.Len(), batchTable.Len())
		}
		for id := 0; id < batchTable.Len(); id++ {
			if s, b := streamTable.Describe(id), batchTable.Describe(id); s != b {
				t.Fatalf("L%d body: stream %s != batch %s", id, s, b)
			}
		}
	})
}
