package nlr

import "testing"

// FuzzSummarizeLossless: summarization of any token stream expands back to
// the original, at every window constant.
func FuzzSummarizeLossless(f *testing.F) {
	f.Add([]byte("abcabcabc"), uint8(10))
	f.Add([]byte(""), uint8(1))
	f.Add([]byte("aaaaaaaaaaaaaaaa"), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, k uint8) {
		toks := make([]string, len(data))
		for i, b := range data {
			toks[i] = string(rune('a' + int(b)%5))
		}
		K := int(k)%20 + 1
		elems := Summarize(toks, K, nil)
		got := Expand(elems)
		if len(got) != len(toks) {
			t.Fatalf("expand len %d != %d", len(got), len(toks))
		}
		for i := range got {
			if got[i] != toks[i] {
				t.Fatalf("token %d: %q != %q", i, got[i], toks[i])
			}
		}
		if len(elems) > len(toks) {
			t.Fatal("summary longer than input")
		}
	})
}
