package mpi

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

func TestOpApplyAndString(t *testing.T) {
	if MIN.apply(2, 3) != 2 || MAX.apply(2, 3) != 3 || SUM.apply(2, 3) != 5 {
		t.Error("op apply wrong")
	}
	if MIN.String() != "MPI_MIN" || MAX.String() != "MPI_MAX" || SUM.String() != "MPI_SUM" {
		t.Error("op names wrong")
	}
}

func TestEagerSendDoesNotBlock(t *testing.T) {
	// Rank 0 sends eagerly then receives; rank 1 mirrors. Send||Send head
	// to head completes because payloads are within the eager limit — the
	// §II-B swapBug scenario that does NOT deadlock.
	err := Run(2, 16, nil, func(r *Rank) error {
		peer := 1 - r.rank
		if err := r.Send(peer, 0, []float64{float64(r.rank)}); err != nil {
			return err
		}
		got, err := r.Recv(peer, 0)
		if err != nil {
			return err
		}
		if got[0] != float64(peer) {
			t.Errorf("rank %d got %v", r.rank, got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousSendSendDeadlocks(t *testing.T) {
	// Same head-to-head pattern but beyond the eager limit: a real
	// deadlock, caught by the detector.
	big := make([]float64, 64)
	err := Run(2, 16, nil, func(r *Rank) error {
		peer := 1 - r.rank
		if err := r.Send(peer, 0, big); err != nil {
			return err
		}
		_, err := r.Recv(peer, 0)
		return err
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestRendezvousCompletesWithMatchingRecv(t *testing.T) {
	big := make([]float64, 64)
	for i := range big {
		big[i] = float64(i)
	}
	err := Run(2, 16, nil, func(r *Rank) error {
		if r.rank == 0 {
			return r.Send(1, 7, big)
		}
		got, err := r.Recv(0, 7)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(got, big) {
			t.Errorf("payload corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagAndSourceMatching(t *testing.T) {
	err := Run(2, 100, nil, func(r *Rank) error {
		if r.rank == 0 {
			if err := r.Send(1, 5, []float64{5}); err != nil {
				return err
			}
			return r.Send(1, 3, []float64{3})
		}
		// Receive tag 3 first even though tag 5 was sent first.
		got3, err := r.Recv(0, 3)
		if err != nil {
			return err
		}
		got5, err := r.Recv(0, 5)
		if err != nil {
			return err
		}
		if got3[0] != 3 || got5[0] != 5 {
			t.Errorf("tag matching broken: %v %v", got3, got5)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendInvalidRank(t *testing.T) {
	err := Run(1, 10, nil, func(r *Rank) error {
		return r.Send(5, 0, nil)
	})
	if err == nil {
		t.Error("send to invalid rank accepted")
	}
}

func TestBarrier(t *testing.T) {
	order := make(chan int, 8)
	err := Run(4, 10, nil, func(r *Rank) error {
		if err := r.Barrier(); err != nil {
			return err
		}
		order <- r.rank
		return r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Errorf("only %d ranks passed the barrier", len(order))
	}
}

func TestAllreduce(t *testing.T) {
	results := make([][]float64, 4)
	err := Run(4, 10, nil, func(r *Rank) error {
		res, err := r.Allreduce([]float64{float64(r.rank), float64(-r.rank)}, SUM)
		if err != nil {
			return err
		}
		results[r.rank] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, res := range results {
		if !reflect.DeepEqual(res, []float64{6, -6}) {
			t.Errorf("rank %d allreduce = %v", rank, res)
		}
	}
}

func TestAllreduceMinMax(t *testing.T) {
	err := Run(3, 10, nil, func(r *Rank) error {
		mn, err := r.Allreduce([]float64{float64(r.rank + 1)}, MIN)
		if err != nil {
			return err
		}
		mx, err := r.Allreduce([]float64{float64(r.rank + 1)}, MAX)
		if err != nil {
			return err
		}
		if mn[0] != 1 || mx[0] != 3 {
			t.Errorf("min/max = %v %v", mn, mx)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSizeMismatchDeadlocks(t *testing.T) {
	// Table VII's bug: one rank passes the wrong size.
	err := Run(4, 10, nil, func(r *Rank) error {
		size := 4
		if r.rank == 2 {
			size = 7
		}
		_, err := r.Allreduce(make([]float64, size), MIN)
		return err
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestBcast(t *testing.T) {
	err := Run(4, 10, nil, func(r *Rank) error {
		data := []float64{0}
		if r.rank == 2 {
			data = []float64{42}
		}
		got, err := r.Bcast(2, data)
		if err != nil {
			return err
		}
		if got[0] != 42 {
			t.Errorf("rank %d bcast got %v", r.rank, got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduce(t *testing.T) {
	err := Run(4, 10, nil, func(r *Rank) error {
		got, err := r.Reduce(0, []float64{float64(r.rank)}, SUM)
		if err != nil {
			return err
		}
		if r.rank == 0 {
			if got[0] != 6 {
				t.Errorf("root reduce = %v", got)
			}
		} else if got != nil {
			t.Errorf("non-root got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesMatchInProgramOrder(t *testing.T) {
	// Two consecutive Allreduces must not interfere.
	err := Run(3, 10, nil, func(r *Rank) error {
		a, err := r.Allreduce([]float64{1}, SUM)
		if err != nil {
			return err
		}
		b, err := r.Allreduce([]float64{2}, SUM)
		if err != nil {
			return err
		}
		if a[0] != 3 || b[0] != 6 {
			t.Errorf("sequenced allreduce = %v %v", a, b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHangTriggersDetector(t *testing.T) {
	err := Run(3, 10, nil, func(r *Rank) error {
		if r.rank == 1 {
			return r.Hang("MPI_Recv")
		}
		return r.Finalize()
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v", err)
	}
}

func TestFinalizeWaitsForAll(t *testing.T) {
	err := Run(4, 10, nil, func(r *Rank) error {
		if r.rank == 0 {
			// Send before finalize so others can proceed.
			if err := r.Send(1, 0, []float64{1}); err != nil {
				return err
			}
		}
		if r.rank == 1 {
			if _, err := r.Recv(0, 0); err != nil {
				return err
			}
		}
		return r.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFinishedRankStrandingOthersAborts(t *testing.T) {
	// Rank 0 exits without sending; rank 1 waits forever.
	err := Run(2, 10, nil, func(r *Rank) error {
		if r.rank == 0 {
			return nil
		}
		_, err := r.Recv(0, 9)
		return err
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v", err)
	}
}

func TestTracingRecordsMPINames(t *testing.T) {
	tr := parlot.NewTracer(parlot.MainImage)
	err := Run(2, 100, tr, func(r *Rank) error {
		r.Init()
		r.Rank()
		r.Size()
		if r.rank == 0 {
			if err := r.Send(1, 0, []float64{1}); err != nil {
				return err
			}
		} else {
			if _, err := r.Recv(0, 0); err != nil {
				return err
			}
		}
		return r.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	set := tr.Collect()
	names := set.Traces[trace.TID(0, 0)].Names(set.Registry)
	want := []string{"MPI_Init", "MPI_Comm_rank", "MPI_Comm_size", "MPI_Send", "MPI_Finalize"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("rank 0 calls = %v", names)
	}
	if set.Traces[trace.TID(0, 0)].Truncated {
		t.Error("clean run marked truncated")
	}
}

func TestDeadlockTruncatesTrace(t *testing.T) {
	tr := parlot.NewTracer(parlot.MainImage)
	err := Run(2, 10, tr, func(r *Rank) error {
		r.Init()
		if r.rank == 0 {
			_, err := r.Recv(1, 0) // never sent
			return err
		}
		_, err := r.Recv(0, 0) // never sent
		return err
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatal(err)
	}
	set := tr.Collect()
	for id, tc := range set.Traces {
		if !tc.Truncated {
			t.Errorf("trace %v not truncated", id)
		}
		names := tc.Names(set.Registry)
		if names[len(names)-1] != "MPI_Recv" {
			t.Errorf("trace %v should end in the blocked call: %v", id, names)
		}
		// The blocked call has an Enter but no Exit.
		last := tc.Events[len(tc.Events)-1]
		if last.Kind != trace.Enter {
			t.Errorf("trace %v last event should be an enter", id)
		}
	}
}

func TestOddEvenSortSmoke(t *testing.T) {
	// A miniature odd/even exchange with value payloads: verifies the
	// runtime actually sorts.
	n := 4
	vals := []float64{9, 3, 7, 1}
	out := make([]float64, n)
	err := Run(n, 100, nil, func(r *Rank) error {
		r.Init()
		mine := vals[r.rank]
		for phase := 0; phase < n; phase++ {
			var ptr int
			if phase%2 == 0 {
				if r.rank%2 == 0 {
					ptr = r.rank + 1
				} else {
					ptr = r.rank - 1
				}
			} else {
				if r.rank%2 == 1 {
					ptr = r.rank + 1
				} else {
					ptr = r.rank - 1
				}
			}
			if ptr < 0 || ptr >= n {
				continue
			}
			var other float64
			if r.rank < ptr {
				if err := r.Send(ptr, phase, []float64{mine}); err != nil {
					return err
				}
				got, err := r.Recv(ptr, phase)
				if err != nil {
					return err
				}
				other = got[0]
				mine = math.Min(mine, other)
			} else {
				got, err := r.Recv(ptr, phase)
				if err != nil {
					return err
				}
				other = got[0]
				if err := r.Send(ptr, phase, []float64{mine}); err != nil {
					return err
				}
				mine = math.Max(mine, other)
			}
		}
		out[r.rank] = mine
		return r.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, []float64{1, 3, 7, 9}) {
		t.Errorf("sorted = %v", out)
	}
}

func TestIsendIrecvWait(t *testing.T) {
	err := Run(2, 4, nil, func(r *Rank) error {
		peer := 1 - r.rank
		// Post the receive early (the LULESH posting pattern), then send.
		rreq, err := r.Irecv(peer, 0)
		if err != nil {
			return err
		}
		sreq, err := r.Isend(peer, 0, []float64{float64(r.rank)})
		if err != nil {
			return err
		}
		got, err := r.Wait(rreq)
		if err != nil {
			return err
		}
		if got[0] != float64(peer) {
			t.Errorf("rank %d got %v", r.rank, got)
		}
		if _, err := r.Wait(sreq); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendRendezvousWaitBlocksUntilConsumed(t *testing.T) {
	big := make([]float64, 64)
	err := Run(2, 4, nil, func(r *Rank) error {
		if r.rank == 0 {
			req, err := r.Isend(1, 0, big) // beyond eager: Wait must block
			if err != nil {
				return err
			}
			_, err = r.Wait(req)
			return err
		}
		_, err := r.Recv(0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendHeadToHeadDoesNotDeadlock(t *testing.T) {
	// Unlike blocking rendezvous Send||Send, Isend||Isend + Wait completes:
	// the posting is decoupled from completion.
	big := make([]float64, 64)
	err := Run(2, 4, nil, func(r *Rank) error {
		peer := 1 - r.rank
		sreq, err := r.Isend(peer, 0, big)
		if err != nil {
			return err
		}
		if _, err := r.Recv(peer, 0); err != nil {
			return err
		}
		_, err = r.Wait(sreq)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitMisuse(t *testing.T) {
	err := Run(2, 4, nil, func(r *Rank) error {
		if r.rank == 1 {
			_, err := r.Recv(0, 0)
			return err
		}
		req, err := r.Isend(1, 0, []float64{1})
		if err != nil {
			return err
		}
		if _, err := r.Wait(req); err != nil {
			return err
		}
		if _, err := r.Wait(req); err == nil {
			t.Error("double wait accepted")
		}
		if _, err := r.Wait(nil); err == nil {
			t.Error("nil request accepted")
		}
		if _, err := r.Irecv(99, 0); err == nil {
			t.Error("irecv from invalid rank accepted")
		}
		if _, err := r.Isend(99, 0, nil); err == nil {
			t.Error("isend to invalid rank accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonblockingTraceNames(t *testing.T) {
	tr := parlot.NewTracer(parlot.MainImage)
	err := Run(2, 4, tr, func(r *Rank) error {
		peer := 1 - r.rank
		rreq, err := r.Irecv(peer, 0)
		if err != nil {
			return err
		}
		if _, err := r.Isend(peer, 0, []float64{1}); err != nil {
			return err
		}
		_, err = r.Wait(rreq)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	set := tr.Collect()
	names := set.Traces[trace.TID(0, 0)].Names(set.Registry)
	want := []string{"MPI_Irecv", "MPI_Isend", "MPI_Wait"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("calls = %v", names)
	}
}

func TestDeadlockWitness(t *testing.T) {
	w := NewWorld(2, 4)
	err := w.Run(nil, func(r *Rank) error {
		if r.rank == 0 {
			_, err := r.Recv(1, 7) // never sent
			return err
		}
		return r.Barrier() // rank 0 never arrives
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatal(err)
	}
	witness := w.DeadlockWitness()
	if len(witness) != 2 {
		t.Fatalf("witness = %v", witness)
	}
	joined := strings.Join(witness, "; ")
	if !strings.Contains(joined, "rank 0 blocked in MPI_Recv(src=1 tag=7)") {
		t.Errorf("witness missing recv: %v", witness)
	}
	if !strings.Contains(joined, "rank 1 blocked in MPI_Barrier") {
		t.Errorf("witness missing barrier: %v", witness)
	}
}

func TestNoWitnessOnCleanRun(t *testing.T) {
	w := NewWorld(2, 4)
	err := w.Run(nil, func(r *Rank) error { return r.Barrier() })
	if err != nil {
		t.Fatal(err)
	}
	if got := w.DeadlockWitness(); len(got) != 0 {
		t.Errorf("clean run has witness %v", got)
	}
}

// Property: randomly generated MATCHED communication schedules always
// complete, and schedules with one receive left unmatched always trip the
// deadlock detector — the runtime can neither hang silently nor abort
// spuriously.
func TestQuickSchedules(t *testing.T) {
	type msg struct{ from, to int }
	run := func(seed int64, unmatched bool) error {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3) + 2
		var script []msg
		for i := 0; i < rng.Intn(10)+1; i++ {
			from := rng.Intn(n)
			to := rng.Intn(n)
			if to == from {
				to = (to + 1) % n
			}
			script = append(script, msg{from, to})
		}
		return Run(n, 1024, nil, func(r *Rank) error {
			for tag, m := range script {
				if r.rank == m.from {
					if err := r.Send(m.to, tag, []float64{1}); err != nil {
						return err
					}
				}
				if r.rank == m.to {
					if _, err := r.Recv(m.from, tag); err != nil {
						return err
					}
				}
			}
			if unmatched && r.rank == 0 {
				_, err := r.Recv(n-1, 9999) // nobody sends this
				return err
			}
			return r.Finalize()
		})
	}
	f := func(seed int64) bool {
		if err := run(seed, false); err != nil {
			return false
		}
		return errors.Is(run(seed, true), ErrDeadlock)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
