package mpi

import (
	"testing"

	"difftrace/internal/otf"
)

// TestMPIIntegration runs a clocked MPI program and checks the recorded
// causal structure: sends precede their receives, and nothing before a
// barrier is concurrent with anything after it.
func TestMPIIntegration(t *testing.T) {
	log := otf.NewLog(4)
	w := NewWorld(4, 4)
	w.AttachClock(log)
	err := w.Run(nil, func(r *Rank) error {
		me := r.UntracedRank()
		if err := r.Barrier(); err != nil {
			return err
		}
		if me%2 == 0 {
			if err := r.Send(me+1, 0, []float64{1}); err != nil {
				return err
			}
		} else {
			if _, err := r.Recv(me-1, 0); err != nil {
				return err
			}
		}
		_, err := r.Allreduce([]float64{float64(me)}, SUM)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Validate(); err != nil {
		t.Fatal(err)
	}
	events := log.Events()
	// Each MPI_Send happens before the matching MPI_Recv on the next rank.
	for _, s := range events {
		if s.Name != "MPI_Send" {
			continue
		}
		found := false
		for _, r := range events {
			if r.Name == "MPI_Recv" && r.Rank == s.Rank+1 && otf.HappensBefore(s, r) {
				found = true
			}
		}
		if !found {
			t.Errorf("send %+v has no causally later recv", s)
		}
	}
	// Every barrier enter happens before every allreduce exit.
	for _, a := range events {
		if a.Name != "MPI_Barrier.enter" {
			continue
		}
		for _, b := range events {
			if b.Name == "MPI_Allreduce.exit" && !otf.HappensBefore(a, b) {
				t.Errorf("barrier enter %d !-> allreduce exit %d", a.ID, b.ID)
			}
		}
	}
}

// TestCausalProgressOnDeadlock checks the happens-before progress measure
// on a clocked hang: the rank that stalls first falls behind the causal
// frontier.
func TestCausalProgressOnDeadlock(t *testing.T) {
	log := otf.NewLog(3)
	w := NewWorld(3, 4)
	w.AttachClock(log)
	err := w.Run(nil, func(r *Rank) error {
		me := r.UntracedRank()
		if me == 2 {
			// Stalls immediately: no sends, one hopeless receive.
			_, err := r.Recv(0, 99)
			return err
		}
		// Ranks 0 and 1 chat for a while before needing rank 2.
		for i := 0; i < 5; i++ {
			if me == 0 {
				if err := r.Send(1, i, []float64{1}); err != nil {
					return err
				}
			} else {
				if _, err := r.Recv(0, i); err != nil {
					return err
				}
			}
		}
		_, err := r.Recv(2, 0) // never satisfied
		return err
	})
	if err != ErrDeadlock {
		t.Fatalf("err = %v", err)
	}
	rank, score := log.LeastProgressedRank()
	if rank != 2 {
		t.Errorf("least progressed rank = %d (score %f)\n%s", rank, score, log.Timeline())
	}
}
