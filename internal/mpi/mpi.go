// Package mpi is an in-process message-passing runtime standing in for the
// real MPI library under the paper's applications (§IV, §V run MVAPICH on
// the XSEDE Bridges machine; this repository runs every rank as a goroutine
// of one process).
//
// Only the behaviours DiffTrace observes are modelled, but those are
// modelled faithfully:
//
//   - point-to-point Send/Recv with an eager limit: messages no larger than
//     the limit are buffered (Send returns immediately), larger ones
//     rendezvous (Send blocks until the matching Recv) — so the paper's
//     swapBug is a *potential* deadlock that completes under buffering,
//     exactly as §II-B describes;
//   - collectives (Barrier, Allreduce, Bcast, Reduce) matched by per-rank
//     call order, where a size mismatch (Table VII's bug) leaves the
//     collective permanently incomplete;
//   - a deadlock detector: the moment every unfinished rank is blocked
//     inside an MPI wait, no further progress is possible in this closed
//     system, so the world aborts, every blocked call returns ErrDeadlock,
//     and traces are left truncated mid-call — reproducing the truncated
//     trace shapes of Figures 6/7b;
//   - every call is recorded through a ParLOT ThreadTracer with the
//     canonical MPI function names the Table I filters match on.
package mpi

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"difftrace/internal/otf"
	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

// ErrDeadlock is returned from every blocked call after the detector fires.
var ErrDeadlock = errors.New("mpi: deadlock detected (all live ranks blocked)")

// Op is a reduction operator for Allreduce/Reduce.
type Op int

const (
	// MIN computes the elementwise minimum.
	MIN Op = iota
	// MAX computes the elementwise maximum.
	MAX
	// SUM computes the elementwise sum.
	SUM
)

// String names the operator like MPI does.
func (o Op) String() string {
	switch o {
	case MIN:
		return "MPI_MIN"
	case MAX:
		return "MPI_MAX"
	case SUM:
		return "MPI_SUM"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

func (o Op) apply(a, b float64) float64 {
	switch o {
	case MIN:
		if a < b {
			return a
		}
		return b
	case MAX:
		if a > b {
			return a
		}
		return b
	default:
		return a + b
	}
}

// message is one in-flight point-to-point payload.
type message struct {
	src, dst, tag int
	data          []float64
	rendezvous    bool
	delivered     bool // set when a Recv consumed it (wakes rendezvous Send)
	otfSend       int  // logical-clock event ID of the send (-1 when unclocked)
}

// collSlot matches one collective call across ranks (keyed by kind and
// per-rank call index, i.e. program order on the communicator).
type collSlot struct {
	contrib   map[int][]float64
	ops       map[int]Op
	contribEv map[int]int // rank -> logical-clock event ID of its contribution
	done      bool
	result    []float64
	root      int
}

// waiter is one rank parked inside an MPI wait, with the predicate that
// would let it proceed and a human-readable description of what it waits
// for. The deadlock detector re-evaluates the predicates and, on abort,
// snapshots the descriptions into the deadlock witness.
type waiter struct {
	pred func() bool
	rank int
	desc string
}

// World is one simulated MPI job.
type World struct {
	n          int
	eagerLimit int

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*message
	colls    map[string]*collSlot
	waiters  map[*waiter]struct{}
	finished int
	aborted  bool
	witness  []string // deadlock witness: one "rank N blocked in X" per rank
	clock    *otf.Log // optional logical-clock recorder
}

// NewWorld creates a world of n ranks with the given eager limit
// (in elements; Send of a payload longer than the limit rendezvous).
func NewWorld(n, eagerLimit int) *World {
	w := &World{
		n: n, eagerLimit: eagerLimit,
		colls:   make(map[string]*collSlot),
		waiters: make(map[*waiter]struct{}),
	}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// AttachClock installs an OTF logical-clock recorder (otf.NewLog(n)).
// Every point-to-point and collective operation then ticks Lamport and
// vector clocks, enabling happened-before mining over the execution
// (paper future-work item 2). Attach before Run.
func (w *World) AttachClock(l *otf.Log) {
	//lint:allow lockdiscipline configuration before Run; the world is not yet shared
	w.clock = l
}

// record ticks the clock if one is attached; joinWith are the causal
// predecessor event IDs. Returns -1 when unclocked.
func (w *World) record(rank int, name string, joinWith ...int) int {
	return w.recordComm(rank, name, -1, joinWith...)
}

// recordComm is record with a peer rank for point-to-point events.
func (w *World) recordComm(rank int, name string, peer int, joinWith ...int) int {
	if w.clock == nil {
		return -1
	}
	valid := joinWith[:0]
	for _, id := range joinWith {
		if id >= 0 {
			valid = append(valid, id)
		}
	}
	return w.clock.RecordComm(rank, name, peer, valid...)
}

// Aborted reports whether the deadlock detector fired.
func (w *World) Aborted() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.aborted
}

// abortLocked fires the deadlock abort, snapshotting the witness: which
// operation every parked rank was blocked in — the first thing an engineer
// asks of a hung job. Caller holds w.mu.
func (w *World) abortLocked() {
	if !w.aborted {
		w.aborted = true
		for wt := range w.waiters {
			w.witness = append(w.witness, fmt.Sprintf("rank %d blocked in %s", wt.rank, wt.desc))
		}
		sort.Strings(w.witness)
		w.cond.Broadcast()
	}
}

// DeadlockWitness returns, after an abort, one line per rank that was
// parked when the detector fired ("rank 5 blocked in MPI_Recv(src=4 tag=7)").
// Empty for clean runs.
func (w *World) DeadlockWitness() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.witness...)
}

// wait blocks the calling rank until pred holds, counting it as blocked for
// the deadlock detector. Caller holds w.mu. Returns ErrDeadlock if the
// world aborted while (or before) waiting.
func (w *World) wait(rank int, desc string, pred func() bool) error {
	wt := &waiter{pred: pred, rank: rank, desc: desc}
	defer delete(w.waiters, wt)
	for {
		if pred() {
			return nil
		}
		if w.aborted {
			return ErrDeadlock
		}
		w.waiters[wt] = struct{}{}
		if len(w.waiters)+w.finished >= w.n && !w.anySatisfiableLocked() {
			// Every live rank is parked and no parked predicate can fire:
			// nothing in this closed system can produce progress — a
			// deadlock, by construction of the model.
			w.abortLocked()
			return ErrDeadlock
		}
		w.cond.Wait()
		delete(w.waiters, wt)
	}
}

// anySatisfiableLocked re-evaluates every parked predicate; a true one means
// its owner merely has not woken from the broadcast yet (not a deadlock).
// Caller holds w.mu.
func (w *World) anySatisfiableLocked() bool {
	for wt := range w.waiters {
		if wt.pred() {
			return true
		}
	}
	return false
}

// Rank is one process's handle on the world. Not safe for concurrent use by
// multiple goroutines (like a real MPI rank, it belongs to one thread).
type Rank struct {
	w    *World
	rank int
	th   *parlot.ThreadTracer
	seq  map[string]int // per-collective-kind call counter
}

// NewRank attaches rank i (0-based) with an optional tracer thread. An
// out-of-range rank is a caller bug, reported as an error rather than a
// panic so harnesses embedding the simulated runtime degrade gracefully.
func (w *World) NewRank(i int, th *parlot.ThreadTracer) (*Rank, error) {
	if i < 0 || i >= w.n {
		return nil, fmt.Errorf("mpi: rank %d out of range [0,%d)", i, w.n)
	}
	return &Rank{w: w, rank: i, th: th, seq: make(map[string]int)}, nil
}

// enter/exit trace helpers; exitErr suppresses the return event when the
// call never returned (deadlock truncation).
func (r *Rank) enter(name string) {
	if r.th != nil {
		r.th.Enter(name)
	}
}

func (r *Rank) exit(name string, err error) {
	if r.th == nil {
		return
	}
	if err != nil {
		r.th.MarkTruncated()
		return
	}
	r.th.Exit(name)
}

// UntracedRank returns the rank index without recording a trace event —
// for harness bookkeeping outside the instrumented program.
func (r *Rank) UntracedRank() int { return r.rank }

// Rank returns this rank's index; traced as MPI_Comm_rank.
func (r *Rank) Rank() int {
	r.enter("MPI_Comm_rank")
	r.exit("MPI_Comm_rank", nil)
	return r.rank
}

// Size returns the world size; traced as MPI_Comm_size.
func (r *Rank) Size() int {
	r.enter("MPI_Comm_size")
	r.exit("MPI_Comm_size", nil)
	return r.w.n
}

// Init records MPI_Init.
func (r *Rank) Init() {
	r.enter("MPI_Init")
	r.exit("MPI_Init", nil)
}

// Send transmits data to dst with the given tag. Payloads within the eager
// limit are buffered; larger ones block until received.
func (r *Rank) Send(dst, tag int, data []float64) error {
	r.enter("MPI_Send")
	err := r.send(dst, tag, data)
	r.exit("MPI_Send", err)
	return err
}

func (r *Rank) send(dst, tag int, data []float64) error {
	if dst < 0 || dst >= r.w.n {
		return fmt.Errorf("mpi: send to invalid rank %d", dst)
	}
	w := r.w
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.aborted {
		return ErrDeadlock
	}
	m := &message{
		src: r.rank, dst: dst, tag: tag,
		data:       append([]float64(nil), data...),
		rendezvous: len(data) > w.eagerLimit,
		otfSend:    w.recordComm(r.rank, "MPI_Send", dst),
	}
	w.queue = append(w.queue, m)
	w.cond.Broadcast()
	if !m.rendezvous {
		return nil
	}
	return w.wait(r.rank, fmt.Sprintf("MPI_Send(dst=%d tag=%d rendezvous)", dst, tag), func() bool { return m.delivered })
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload.
func (r *Rank) Recv(src, tag int) ([]float64, error) {
	r.enter("MPI_Recv")
	data, err := r.recv(src, tag)
	r.exit("MPI_Recv", err)
	return data, err
}

func (r *Rank) recv(src, tag int) ([]float64, error) {
	w := r.w
	w.mu.Lock()
	defer w.mu.Unlock()
	var got *message
	find := func() bool {
		for _, m := range w.queue {
			if !m.delivered && m.dst == r.rank && m.src == src && m.tag == tag {
				got = m
				return true
			}
		}
		return false
	}
	if err := w.wait(r.rank, fmt.Sprintf("MPI_Recv(src=%d tag=%d)", src, tag), find); err != nil {
		return nil, err
	}
	got.delivered = true
	w.recordComm(r.rank, "MPI_Recv", got.src, got.otfSend)
	// Compact the queue occasionally to keep memory bounded on long runs.
	if len(w.queue) > 64 {
		live := w.queue[:0]
		for _, m := range w.queue {
			if !m.delivered {
				live = append(live, m)
			}
		}
		w.queue = live
	}
	w.cond.Broadcast()
	return got.data, nil
}

// Request is a handle for a non-blocking operation, completed by Wait.
type Request struct {
	rank   int
	isRecv bool
	src    int
	tag    int
	msg    *message // for Isend: the in-flight message
	waited bool
}

// Isend starts a non-blocking send (traced as MPI_Isend). The payload is
// buffered regardless of the eager limit — completion is deferred to Wait,
// which blocks until a rendezvous-sized message has been received.
func (r *Rank) Isend(dst, tag int, data []float64) (*Request, error) {
	r.enter("MPI_Isend")
	defer r.exit("MPI_Isend", nil)
	if dst < 0 || dst >= r.w.n {
		return nil, fmt.Errorf("mpi: isend to invalid rank %d", dst)
	}
	w := r.w
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.aborted {
		return nil, ErrDeadlock
	}
	m := &message{
		src: r.rank, dst: dst, tag: tag,
		data:       append([]float64(nil), data...),
		rendezvous: len(data) > w.eagerLimit,
		otfSend:    w.recordComm(r.rank, "MPI_Isend", dst),
	}
	w.queue = append(w.queue, m)
	w.cond.Broadcast()
	return &Request{rank: r.rank, msg: m}, nil
}

// Irecv posts a non-blocking receive (traced as MPI_Irecv); the message is
// delivered by Wait.
func (r *Rank) Irecv(src, tag int) (*Request, error) {
	r.enter("MPI_Irecv")
	defer r.exit("MPI_Irecv", nil)
	if src < 0 || src >= r.w.n {
		return nil, fmt.Errorf("mpi: irecv from invalid rank %d", src)
	}
	r.w.mu.Lock()
	r.w.record(r.rank, "MPI_Irecv")
	r.w.mu.Unlock()
	return &Request{rank: r.rank, isRecv: true, src: src, tag: tag}, nil
}

// Wait completes a non-blocking operation (traced as MPI_Wait): for an
// Irecv it blocks until the matching message arrives and returns the
// payload; for a rendezvous-sized Isend it blocks until the message is
// consumed. Waiting twice is an error, mirroring MPI's freed requests.
func (r *Rank) Wait(req *Request) ([]float64, error) {
	r.enter("MPI_Wait")
	data, err := r.waitReq(req)
	r.exit("MPI_Wait", err)
	return data, err
}

func (r *Rank) waitReq(req *Request) ([]float64, error) {
	if req == nil || req.rank != r.rank {
		return nil, fmt.Errorf("mpi: wait on foreign or nil request")
	}
	if req.waited {
		return nil, fmt.Errorf("mpi: request already completed")
	}
	req.waited = true
	if req.isRecv {
		return r.recv(req.src, req.tag)
	}
	// Isend: rendezvous messages must be consumed before completion.
	if req.msg == nil || !req.msg.rendezvous {
		return nil, nil
	}
	w := r.w
	w.mu.Lock()
	defer w.mu.Unlock()
	return nil, w.wait(r.rank, fmt.Sprintf("MPI_Wait(isend dst=%d tag=%d)", req.msg.dst, req.msg.tag), func() bool { return req.msg.delivered })
}

// slot fetches (creating) the collective slot for this rank's next call of
// the given kind. Caller holds w.mu.
func (r *Rank) slot(kind string) *collSlot {
	idx := r.seq[kind]
	r.seq[kind]++
	key := fmt.Sprintf("%s#%d", kind, idx)
	s, ok := r.w.colls[key]
	if !ok {
		s = &collSlot{contrib: make(map[int][]float64), contribEv: make(map[int]int)}
		r.w.colls[key] = s
	}
	return s
}

// Barrier blocks until all ranks reach the same barrier call.
func (r *Rank) Barrier() error {
	r.enter("MPI_Barrier")
	err := r.barrier()
	r.exit("MPI_Barrier", err)
	return err
}

func (r *Rank) barrier() error {
	w := r.w
	w.mu.Lock()
	defer w.mu.Unlock()
	s := r.slot("barrier")
	s.contrib[r.rank] = nil
	s.contribEv[r.rank] = w.record(r.rank, "MPI_Barrier.enter")
	if len(s.contrib) == w.n {
		s.done = true
	}
	w.cond.Broadcast()
	if err := w.wait(r.rank, "MPI_Barrier", func() bool { return s.done }); err != nil {
		return err
	}
	w.record(r.rank, "MPI_Barrier.exit", slotEvents(s)...)
	return nil
}

// slotEvents gathers a slot's contribution event IDs (caller holds w.mu),
// sorted so the join list recorded into the trace is independent of map
// iteration order — collective exit events must be byte-identical across
// runs of the same schedule.
func slotEvents(s *collSlot) []int {
	out := make([]int, 0, len(s.contribEv))
	for _, id := range s.contribEv {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Allreduce combines data across all ranks with op and returns the result
// to every rank. All ranks must pass the same payload size; a mismatch
// (the Table VII bug) leaves every rank blocked and trips the deadlock
// detector.
func (r *Rank) Allreduce(data []float64, op Op) ([]float64, error) {
	r.enter("MPI_Allreduce")
	res, err := r.allreduce(data, op)
	r.exit("MPI_Allreduce", err)
	return res, err
}

func (r *Rank) allreduce(data []float64, op Op) ([]float64, error) {
	w := r.w
	w.mu.Lock()
	defer w.mu.Unlock()
	s := r.slot("allreduce")
	if s.ops == nil {
		s.ops = make(map[int]Op)
	}
	s.contrib[r.rank] = append([]float64(nil), data...)
	s.ops[r.rank] = op
	s.contribEv[r.rank] = w.record(r.rank, "MPI_Allreduce.enter")
	if len(s.contrib) == w.n {
		if combined, ok := treeCombine(s.contrib, s.ops, w.n); ok {
			s.result = combined
			s.done = true
		}
		// Size mismatch: slot stays incomplete forever — the deadlock.
	}
	w.cond.Broadcast()
	if err := w.wait(r.rank, fmt.Sprintf("MPI_Allreduce(size=%d)", len(data)), func() bool { return s.done }); err != nil {
		return nil, err
	}
	w.record(r.rank, "MPI_Allreduce.exit", slotEvents(s)...)
	return append([]float64(nil), s.result...), nil
}

// treeCombine folds the contributions along a binary reduction tree, each
// merge applying the operator of the rank performing it — an
// MVAPICH-style recursive reduction, so every rank receives the same
// result. With uniform operators this is the standard reduction; with
// mismatched operators (the §IV-D injected bug, undefined behaviour in
// real MPI) the buggy rank's operator corrupts exactly the merges its
// subtree performs, deterministically. ok=false when sizes mismatch.
func treeCombine(contrib map[int][]float64, ops map[int]Op, n int) ([]float64, bool) {
	if !sizesMatch(contrib, n) {
		return nil, false
	}
	vals := make([][]float64, n)
	for rank := 0; rank < n; rank++ {
		vals[rank] = append([]float64(nil), contrib[rank]...)
	}
	for stride := 1; stride < n; stride *= 2 {
		for i := 0; i+stride < n; i += 2 * stride {
			op := ops[i] // the lower rank of the pair performs the merge
			for k := range vals[i] {
				vals[i][k] = op.apply(vals[i][k], vals[i+stride][k])
			}
		}
	}
	return vals[0], true
}

// sizesMatch reports whether all n contributions arrived with one payload
// size (the collective's completion condition).
func sizesMatch(contrib map[int][]float64, n int) bool {
	size := -1
	for rank := 0; rank < n; rank++ {
		data, ok := contrib[rank]
		if !ok {
			return false
		}
		if size == -1 {
			size = len(data)
		} else if len(data) != size {
			return false
		}
	}
	return true
}

// combine folds all contributions in rank order with one operator;
// ok=false when sizes mismatch.
func combine(contrib map[int][]float64, op Op) ([]float64, bool) {
	var out []float64
	for rank := 0; rank < len(contrib); rank++ {
		data, ok := contrib[rank]
		if !ok {
			return nil, false
		}
		if out == nil {
			out = append([]float64(nil), data...)
			continue
		}
		if len(data) != len(out) {
			return nil, false
		}
		for i, v := range data {
			out[i] = op.apply(out[i], v)
		}
	}
	return out, true
}

// Bcast sends root's data to every rank. The root deposits and returns
// immediately (eager broadcast); non-roots block until the data arrives.
func (r *Rank) Bcast(root int, data []float64) ([]float64, error) {
	r.enter("MPI_Bcast")
	res, err := r.bcast(root, data)
	r.exit("MPI_Bcast", err)
	return res, err
}

func (r *Rank) bcast(root int, data []float64) ([]float64, error) {
	w := r.w
	w.mu.Lock()
	defer w.mu.Unlock()
	s := r.slot("bcast")
	if r.rank == root {
		s.result = append([]float64(nil), data...)
		s.done = true
		s.root = root
		s.contribEv[root] = w.record(root, "MPI_Bcast.root")
		w.cond.Broadcast()
		return append([]float64(nil), s.result...), nil
	}
	if err := w.wait(r.rank, fmt.Sprintf("MPI_Bcast(root=%d)", root), func() bool { return s.done }); err != nil {
		return nil, err
	}
	w.record(r.rank, "MPI_Bcast.exit", s.contribEv[s.root])
	return append([]float64(nil), s.result...), nil
}

// Reduce combines data across ranks onto root. Non-roots deposit and return
// immediately; the root blocks until every contribution arrived.
func (r *Rank) Reduce(root int, data []float64, op Op) ([]float64, error) {
	r.enter("MPI_Reduce")
	res, err := r.reduce(root, data, op)
	r.exit("MPI_Reduce", err)
	return res, err
}

func (r *Rank) reduce(root int, data []float64, op Op) ([]float64, error) {
	w := r.w
	w.mu.Lock()
	defer w.mu.Unlock()
	s := r.slot("reduce")
	s.contrib[r.rank] = append([]float64(nil), data...)
	s.contribEv[r.rank] = w.record(r.rank, "MPI_Reduce.enter")
	w.cond.Broadcast()
	if r.rank != root {
		return nil, nil
	}
	if err := w.wait(r.rank, "MPI_Reduce(root)", func() bool { return len(s.contrib) == w.n }); err != nil {
		return nil, err
	}
	w.record(root, "MPI_Reduce.exit", slotEvents(s)...)
	combined, ok := combine(s.contrib, op)
	if !ok {
		return nil, fmt.Errorf("mpi: reduce size mismatch at root %d", root)
	}
	return combined, nil
}

// Finalize blocks until every rank calls it (and records MPI_Finalize).
func (r *Rank) Finalize() error {
	r.enter("MPI_Finalize")
	err := r.finalize()
	r.exit("MPI_Finalize", err)
	return err
}

func (r *Rank) finalize() error {
	w := r.w
	w.mu.Lock()
	defer w.mu.Unlock()
	s := r.slot("finalize")
	s.contrib[r.rank] = nil
	s.contribEv[r.rank] = w.record(r.rank, "MPI_Finalize.enter")
	if len(s.contrib) == w.n {
		s.done = true
	}
	w.cond.Broadcast()
	if err := w.wait(r.rank, "MPI_Finalize", func() bool { return s.done }); err != nil {
		return err
	}
	w.record(r.rank, "MPI_Finalize.exit", slotEvents(s)...)
	return nil
}

// Hang blocks forever (until the deadlock detector aborts the world) —
// the primitive behind dlBug's "actual deadlock".
func (r *Rank) Hang(traceAs string) error {
	r.enter(traceAs)
	w := r.w
	w.mu.Lock()
	err := w.wait(r.rank, traceAs+"(hang)", func() bool { return false })
	w.mu.Unlock()
	r.exit(traceAs, err)
	return err
}

// Run spawns body for every rank as its own goroutine and waits for the job
// to finish. Each rank gets a tracer thread (process=rank, thread=0) from
// tracer (which may be nil). Returns ErrDeadlock if the detector fired.
func Run(n, eagerLimit int, tracer *parlot.Tracer, body func(r *Rank) error) error {
	w := NewWorld(n, eagerLimit)
	return w.Run(tracer, body)
}

// Run executes body on every rank of an existing world.
func (w *World) Run(tracer *parlot.Tracer, body func(r *Rank) error) error {
	var wg sync.WaitGroup
	errs := make([]error, w.n)
	for i := 0; i < w.n; i++ {
		wg.Add(1)
		//lint:allow nakedgoroutine simulated MPI ranks model the traced app and must all be runnable at once or the deadlock detector would deadlock itself; this is not pipeline concurrency
		go func(rankNo int) {
			defer wg.Done()
			var th *parlot.ThreadTracer
			if tracer != nil {
				th = tracer.Thread(trace.TID(rankNo, 0))
			}
			r, err := w.NewRank(rankNo, th)
			if err != nil {
				errs[rankNo] = err
				w.mu.Lock()
				w.finished++
				w.cond.Broadcast()
				w.mu.Unlock()
				return
			}
			errs[rankNo] = body(r)
			w.mu.Lock()
			w.finished++
			// Waking every waiter forces a predicate re-check; a waiter
			// whose predicate is still false re-enters wait(), where the
			// blocked+finished accounting now detects a true deadlock.
			w.cond.Broadcast()
			w.mu.Unlock()
		}(i)
	}
	wg.Wait()
	if w.Aborted() {
		return ErrDeadlock
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
