module difftrace

go 1.22
