// Streaming memory-ceiling regression test: the whole point of the
// streaming pipeline is that analysis memory is bounded by the compressed
// input plus per-object summarizer state, never by the trace expansion.
// This test generates a PLOT1 pair whose expansion is >=20x the heap
// budget, runs the full streaming diff under a heap sampler, and fails if
// the live heap ever exceeded the budget. `make memceiling` (and its CI
// job) runs it; -short skips it.
package difftrace_test

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"difftrace/internal/attr"
	"difftrace/internal/cluster"
	"difftrace/internal/core"
	"difftrace/internal/filter"
	"difftrace/internal/obs"
	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

// streamPlotNames is the function universe of the generated traces.
var streamPlotNames = []string{"MPI_Send", "MPI_Recv", "MPI_Barrier", "compute_a", "compute_b"}

// genStreamPlot writes a PLOT1 blob directly through the FCM/RLE encoder —
// never materializing a TraceSet — so generation itself stays O(1) in the
// event count. Each of the threads processes cycles through the name table
// (one long, perfectly regular loop the compressor collapses to almost
// nothing); variant phase-shifts the last thread's second half, giving the
// diff a real deviant to find.
func genStreamPlot(t testing.TB, threads, eventsPerThread, variant int) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString("PLOT1")
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:n])
	}
	putUvarint(uint64(len(streamPlotNames)))
	for _, n := range streamPlotNames {
		putUvarint(uint64(len(n)))
		buf.WriteString(n)
	}
	putUvarint(uint64(threads))
	for th := 0; th < threads; th++ {
		putUvarint(uint64(th)) // process
		putUvarint(0)          // thread
		buf.WriteByte(0)       // not truncated
		var comp bytes.Buffer
		enc := parlot.NewEncoder(&comp)
		for i := 0; i < eventsPerThread; i++ {
			shift := 0
			if variant != 0 && th == threads-1 && i > eventsPerThread/2 {
				shift = variant
			}
			fn := uint32((i + shift) % len(streamPlotNames))
			enc.Encode(fn<<1 | uint32(trace.Enter))
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		putUvarint(uint64(comp.Len()))
		buf.Write(comp.Bytes())
	}
	return buf.Bytes()
}

func TestStreamingMemoryCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("memory-ceiling workload skipped under -short (make memceiling runs it)")
	}
	const (
		threads         = 4
		eventsPerThread = 3_000_000
		budget          = 8 << 20 // peak live heap over baseline
	)
	// The premise the test exists to defend: the expansion could not fit.
	expansion := 2 * threads * eventsPerThread * 8 // trace.Event is 8 bytes
	if expansion < 20*budget {
		t.Fatalf("workload too small: expansion %d < 20x budget %d", expansion, 20*budget)
	}

	normalBlob := genStreamPlot(t, threads, eventsPerThread, 0)
	faultyBlob := genStreamPlot(t, threads, eventsPerThread, 2)
	t.Logf("compressed inputs: %d + %d bytes for %d events (%.0fx expansion over budget)",
		len(normalBlob), len(faultyBlob), 2*threads*eventsPerThread, float64(expansion)/budget)

	reg := trace.NewRegistry()
	normal, _, err := parlot.ReadStreamSetOptions(bytes.NewReader(normalBlob), reg, trace.ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	faulty, _, err := parlot.ReadStreamSetOptions(bytes.NewReader(faultyBlob), reg, trace.ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	normalBlob, faultyBlob = nil, nil

	// Tighten GC pacing so the sampled peak tracks live state rather than
	// collector laziness; the ceiling is a statement about what the
	// pipeline holds, not about GOGC defaults.
	defer debug.SetGCPercent(debug.SetGCPercent(20))
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	baseline := ms.HeapAlloc

	sampler := obs.StartHeapSampler(time.Millisecond)
	rep, err := core.DiffRunStream(normal, faulty, core.Config{
		Filter: filter.Everything(), Attr: attr.Config{Kind: attr.Single, Freq: attr.Actual},
		Linkage: cluster.Ward, Workers: 2,
	})
	peak := sampler.Stop()
	if err != nil {
		t.Fatal(err)
	}

	// The run must have actually analyzed the deviant, not shortcut.
	suspects := rep.Processes.TopSuspects(1, 1e-9)
	if len(suspects) == 0 || suspects[0] != "3" {
		t.Errorf("deviant process not ranked first: %v", suspects)
	}
	used := int64(peak) - int64(baseline)
	t.Logf("peak heap over baseline: %.2f MiB (budget %.0f MiB)", float64(used)/(1<<20), float64(budget)/(1<<20))
	if used > budget {
		t.Fatalf("streaming analysis exceeded its memory budget: peak-baseline %d bytes > %d", used, budget)
	}
}
