// End-to-end integration tests: every application × fault combination runs
// under the tracing substrate, round-trips through the on-disk trace
// format, and flows through the full analysis pipeline — the workflow a
// user drives via cmd/tracegen + cmd/difftrace.
package difftrace_test

import (
	"bytes"
	"testing"

	"difftrace/internal/apps/ilcs"
	"difftrace/internal/apps/lulesh"
	"difftrace/internal/apps/oddeven"
	"difftrace/internal/attr"
	"difftrace/internal/core"
	"difftrace/internal/faults"
	"difftrace/internal/filter"
	"difftrace/internal/parlot"
	"difftrace/internal/progress"
	"difftrace/internal/stat"
	"difftrace/internal/trace"
)

// appRunner executes one app run under a tracer.
type appRunner func(t *testing.T, plan *faults.Plan, tr *parlot.Tracer)

func oddEvenRunner(procs int) appRunner {
	return func(t *testing.T, plan *faults.Plan, tr *parlot.Tracer) {
		t.Helper()
		if _, err := oddeven.Run(oddeven.Config{Procs: procs, Seed: 5, Plan: plan, Tracer: tr}); err != nil {
			t.Fatal(err)
		}
	}
}

func ilcsRunner() appRunner {
	return func(t *testing.T, plan *faults.Plan, tr *parlot.Tracer) {
		t.Helper()
		if _, err := ilcs.Run(ilcs.Config{
			Procs: 4, Workers: 2, Cities: 10, Seed: 7,
			StableRounds: 2, MaxRounds: 8, EvalsPerRound: 4,
			Plan: plan, Tracer: tr,
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func luleshRunner() appRunner {
	return func(t *testing.T, plan *faults.Plan, tr *parlot.Tracer) {
		t.Helper()
		if _, err := lulesh.Run(lulesh.Config{
			Procs: 4, Threads: 2, EdgeElems: 4, Regions: 5, Cycles: 2,
			Plan: plan, Tracer: tr,
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// roundTrip serializes a trace set to the text format and reads it back on
// the shared registry, as the CLI workflow does.
func roundTrip(t *testing.T, set *trace.TraceSet, reg *trace.Registry) *trace.TraceSet {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteSetText(&buf, set); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadSetText(&buf, reg)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalEvents() != set.TotalEvents() {
		t.Fatalf("round trip lost events: %d vs %d", got.TotalEvents(), set.TotalEvents())
	}
	return got
}

func TestEndToEndAllAppsAndFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("integration tests skipped in -short mode")
	}
	cases := []struct {
		name      string
		run       appRunner
		fault     string
		wantTrunc bool // deadlock-class faults truncate traces
		// wantChange: the fault must move the JSM. The wrong-operation bug
		// is exempt: it is *silent* and needs the §IV-D hard instance to
		// surface (see the tableVIII experiment); at this toy scale two
		// runs can legitimately coincide.
		wantChange bool
	}{
		{"oddeven/swapBug", oddEvenRunner(16), "swapBug", false, true},
		{"oddeven/dlBug", oddEvenRunner(16), "dlBug", true, true},
		{"ilcs/ompBug", ilcsRunner(), "ompBug", false, true},
		{"ilcs/wrongSize", ilcsRunner(), "wrongSize", true, true},
		{"ilcs/wrongOp", ilcsRunner(), "wrongOp", false, false},
		{"lulesh/skipLeapFrog", luleshRunner(), "skipLeapFrog", true, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			collectReg := trace.NewRegistry()
			collect := func(plan *faults.Plan) *trace.TraceSet {
				tr := parlot.NewTracerWith(parlot.MainImage, collectReg)
				c.run(t, plan, tr)
				return tr.Collect()
			}
			plan, err := faults.Named(c.fault)
			if err != nil {
				t.Fatal(err)
			}
			// Faults in the canned plans target paper ranks/threads; remap
			// to the smaller integration configs where needed.
			for i := range plan.Faults {
				if c.name[:4] != "odde" {
					if plan.Faults[i].Process >= 4 {
						plan.Faults[i].Process %= 4
					}
					if plan.Faults[i].Thread > 2 {
						plan.Faults[i].Thread = 1 + plan.Faults[i].Thread%2
					}
				}
			}

			// Collect both runs, round-trip through the disk format on a
			// fresh registry (exactly what cmd/difftrace does).
			fileReg := trace.NewRegistry()
			normal := roundTrip(t, collect(nil), fileReg)
			faulty := roundTrip(t, collect(plan), fileReg)

			truncated := 0
			for _, tr := range faulty.Traces {
				if tr.Truncated {
					truncated++
				}
			}
			if c.wantTrunc && truncated == 0 {
				t.Error("expected truncated traces")
			}
			if !c.wantTrunc && truncated != 0 {
				t.Errorf("unexpected truncation (%d traces)", truncated)
			}

			// Full pipeline over the round-tripped sets.
			flt, err := filter.ParseSpec("11.0K10")
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.DefaultConfig()
			cfg.Filter = flt
			cfg.Attr = attr.Config{Kind: attr.Single, Freq: attr.Actual}
			rep, err := core.DiffRun(normal, faulty, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Threads.Suspects) == 0 {
				t.Fatal("no suspects computed")
			}
			if c.wantChange && rep.Threads.Suspects[0].Score <= 0 {
				t.Error("fault produced no similarity change at all")
			}
			// diffNLR of the top suspect renders.
			top := rep.Threads.Suspects[0].Name
			d, err := rep.DiffNLR(rep.Threads, top)
			if err != nil {
				t.Fatal(err)
			}
			if out := d.Render(false); len(out) == 0 {
				t.Error("empty diffNLR render")
			}
			// The companion analyses run on the same data.
			if tree := stat.Build(faulty); len(tree.Classes()) == 0 {
				t.Error("STAT produced no classes")
			}
			pa := progress.Analyze(normal, faulty, 10)
			if len(pa.Tasks) == 0 {
				t.Error("progress analysis empty")
			}
			for _, task := range pa.Tasks {
				if task.Score < 0 || task.Score > 1 {
					t.Errorf("progress %v out of range: %f", task.ID, task.Score)
				}
			}
		})
	}
}
