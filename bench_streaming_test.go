// Streaming-vs-batch benchmark: same PLOT1 bytes, same report, two memory
// stories. `make bench-streaming` regenerates the BENCH_streaming.json
// baseline; the headline numbers are the peak-heap-MiB gap between
// mode=batch (which materializes the expansion) and mode=stream (which
// re-decodes per round) and the wall-time cost streaming pays for it.
package difftrace_test

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"difftrace/internal/attr"
	"difftrace/internal/cluster"
	"difftrace/internal/core"
	"difftrace/internal/filter"
	"difftrace/internal/obs"
	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

// streamBenchConfig is the shared analysis configuration of both modes.
func streamBenchConfig() core.Config {
	return core.Config{
		Filter: filter.Everything(), Attr: attr.Config{Kind: attr.Single, Freq: attr.Actual},
		Linkage: cluster.Ward, Workers: 2,
	}
}

// BenchmarkStreaming_DiffRun runs the full diff over a loopy 8M-event pair
// in both modes, reporting the sampled peak heap (over a post-GC baseline)
// alongside the usual time/allocs. The reports are byte-identical — the
// differential suite proves that; this benchmark prices the two paths.
func BenchmarkStreaming_DiffRun(b *testing.B) {
	const threads, eventsPerThread = 4, 1_000_000
	normalBlob := genStreamPlot(b, threads, eventsPerThread, 0)
	faultyBlob := genStreamPlot(b, threads, eventsPerThread, 2)

	measure := func(b *testing.B, run func()) {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		baseline := ms.HeapAlloc
		sampler := obs.StartHeapSampler(time.Millisecond)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
		b.StopTimer()
		peak := sampler.Stop()
		b.ReportMetric(float64(int64(peak)-int64(baseline))/(1<<20), "peak-heap-MiB")
	}

	b.Run("mode=batch", func(b *testing.B) {
		measure(b, func() {
			reg := trace.NewRegistry()
			normal, _, err := parlot.ReadSetBinaryOptions(bytes.NewReader(normalBlob), reg, trace.ReadOptions{})
			if err != nil {
				b.Fatal(err)
			}
			faulty, _, err := parlot.ReadSetBinaryOptions(bytes.NewReader(faultyBlob), reg, trace.ReadOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.DiffRun(normal, faulty, streamBenchConfig()); err != nil {
				b.Fatal(err)
			}
		})
	})
	b.Run("mode=stream", func(b *testing.B) {
		measure(b, func() {
			reg := trace.NewRegistry()
			normal, _, err := parlot.ReadStreamSetOptions(bytes.NewReader(normalBlob), reg, trace.ReadOptions{})
			if err != nil {
				b.Fatal(err)
			}
			faulty, _, err := parlot.ReadStreamSetOptions(bytes.NewReader(faultyBlob), reg, trace.ReadOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.DiffRunStream(normal, faulty, streamBenchConfig()); err != nil {
				b.Fatal(err)
			}
		})
	})
}
