// Telemetry overhead benchmark: the observability acceptance gate says the
// fully-instrumented path — obs.Run registry, request trace ID, live
// Progress riding the context, the 50ms heap sampler, and a JSON logger —
// must cost under 3% wall time against the telemetry-nil pipeline on the
// BenchmarkParallel_DiffRun workload. `make bench-obs` pins the comparison
// into BENCH_obs.json.
//
//	go test -bench=TelemetryOverhead -benchmem
package difftrace_test

import (
	"context"
	"io"
	"testing"
	"time"

	"difftrace/internal/attr"
	"difftrace/internal/cluster"
	"difftrace/internal/core"
	"difftrace/internal/filter"
	"difftrace/internal/obs"
	"difftrace/internal/obs/olog"
)

// benchObsConfig is the BenchmarkParallel_DiffRun/workers=8 configuration,
// with the telemetry surface as the only variable.
func benchObsConfig(run *obs.Run) core.Config {
	return core.Config{
		Filter:  filter.Everything(),
		Attr:    attr.Config{Kind: attr.Single, Freq: attr.Actual},
		Linkage: cluster.Ward,
		Workers: 8,
		Obs:     run,
	}
}

// BenchmarkTelemetryOverhead_DiffRun runs the LULESH-scale synthetic pair
// twice: telemetry=nil is the bare pipeline (nil Run, nil ctx, no logger);
// telemetry=on is everything the service attaches to a job. Compare the
// two ns/op figures for the overhead ratio.
func BenchmarkTelemetryOverhead_DiffRun(b *testing.B) {
	pair := synthSets(b)

	b.Run("telemetry=nil", func(b *testing.B) {
		cfg := benchObsConfig(nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.DiffRunContext(nil, pair.normal, pair.faulty, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("telemetry=on", func(b *testing.B) {
		logger := olog.New(io.Discard, olog.Info).With(olog.Str("component", "bench"))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Per-iteration setup mirrors one service job: fresh Run, fresh
			// trace ID, fresh Progress, a live heap sampler, and two log
			// lines bracketing the run. This is deliberately inside the
			// timed loop — it IS the overhead under test.
			run := obs.NewRun("bench")
			tid := obs.NewTraceID()
			run.SetTraceID(tid)
			prog := obs.NewProgress()
			prog.MarkStarted()
			ctx := obs.WithProgress(obs.WithTraceID(context.Background(), tid), prog)
			hs := obs.StartHeapSamplerInto(50*time.Millisecond, prog)
			jl := logger.With(olog.Str("trace_id", string(tid)))
			jl.Info("attempt starting")
			rep, err := core.DiffRunContext(ctx, pair.normal, pair.faulty, benchObsConfig(run))
			hs.Stop()
			if err != nil {
				b.Fatal(err)
			}
			snap := prog.Snapshot()
			jl.Info("job done", olog.Int64("events", snap.Events), olog.Int("degraded", len(rep.Degraded)))
		}
	})
}
