// Golden lattice tests: the concept-lattice renders and concept orderings
// must stay byte-identical across the bitset FCA rewrite and across worker
// counts. The goldens under testdata/fca/golden_*.txt were generated with
// the original map-based AttrSet implementation, so any drift in Render(),
// Concepts() ordering, or Edges() is a regression against the paper's
// Figure 3-style output. Regenerate (only when an output change is
// intended) with UPDATE_GOLDEN=1 go test -run GoldenLattice .
package difftrace_test

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"difftrace/internal/attr"
	"difftrace/internal/cluster"
	"difftrace/internal/core"
	"difftrace/internal/fca"
	"difftrace/internal/filter"
	"difftrace/internal/trace"
)

// tableIVLattice builds the paper's Figure 3 worked example (Table IV).
func tableIVLattice() *fca.Lattice {
	common := []string{"MPI_Init", "MPI_Comm_Size", "MPI_Comm_Rank", "MPI_Finalize"}
	l := fca.NewLattice()
	l.AddObject("T0", fca.NewAttrSet(append([]string{"L0"}, common...)...))
	l.AddObject("T1", fca.NewAttrSet(append([]string{"L1"}, common...)...))
	l.AddObject("T2", fca.NewAttrSet(append([]string{"L0"}, common...)...))
	l.AddObject("T3", fca.NewAttrSet(append([]string{"L1"}, common...)...))
	return l
}

// dumpLattice renders everything the golden pins: the Figure 3-style
// render, the deterministic Concepts() ordering, and the Hasse cover edges.
func dumpLattice(b *strings.Builder, title string, l *fca.Lattice) {
	fmt.Fprintf(b, "--- %s ---\n", title)
	b.WriteString(l.Render())
	for i, c := range l.Concepts() {
		fmt.Fprintf(b, "concept[%d] = %s\n", i, c)
	}
	for _, e := range l.Edges() {
		fmt.Fprintf(b, "edge %d -> %d\n", e[0], e[1])
	}
}

func readFixturePair(t *testing.T, name string) (*trace.TraceSet, *trace.TraceSet) {
	t.Helper()
	reg := trace.NewRegistry()
	read := func(side string) *trace.TraceSet {
		f, err := os.Open(filepath.Join("testdata", "fca", name+"_"+side+".trace"))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		s, err := trace.ReadSetText(bufio.NewReader(f), reg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return read("normal"), read("faulty")
}

// fixtureDump runs the full pipeline with lattices on and renders all four
// lattices (both levels x both sides) of one experiment fixture.
func fixtureDump(t *testing.T, name string, workers int) string {
	t.Helper()
	normal, faulty := readFixturePair(t, name)
	cfg := core.Config{
		Filter:        filter.New(filter.MPIAll),
		Attr:          attr.Config{Kind: attr.Single, Freq: attr.NoFreq},
		Linkage:       cluster.Ward,
		BuildLattices: true,
		Workers:       workers,
	}
	rep, err := core.DiffRun(normal, faulty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	dumpLattice(&b, name+"/threads/normal", rep.Threads.Normal.Lattice)
	dumpLattice(&b, name+"/threads/faulty", rep.Threads.Faulty.Lattice)
	dumpLattice(&b, name+"/processes/normal", rep.Processes.Normal.Lattice)
	dumpLattice(&b, name+"/processes/faulty", rep.Processes.Faulty.Lattice)
	return b.String()
}

func checkGolden(t *testing.T, name string, got string) {
	t.Helper()
	golden := filepath.Join("testdata", "fca", "golden_"+name+".txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(got), want) {
		t.Errorf("%s drifted from golden\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestGoldenLatticeFigure3 pins the worked example of the paper: Render,
// concept ordering, and cover edges must match the map-era golden bytes.
func TestGoldenLatticeFigure3(t *testing.T) {
	var b strings.Builder
	dumpLattice(&b, "figure3", tableIVLattice())
	checkGolden(t, "figure3", b.String())
}

// TestGoldenLatticeWorkersDeterminism pins the ILCS and LULESH experiment
// fixtures: the lattice renders must be byte-identical to the goldens and
// across Workers:1 vs Workers:8 (part of `make determinism`).
func TestGoldenLatticeWorkersDeterminism(t *testing.T) {
	for _, name := range []string{"ilcs", "lulesh"} {
		seq := fixtureDump(t, name, 1)
		par := fixtureDump(t, name, 8)
		if seq != par {
			t.Errorf("%s: lattice dump differs between Workers:1 and Workers:8", name)
		}
		checkGolden(t, name, seq)
	}
}
