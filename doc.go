// Package difftrace is a from-scratch Go reproduction of "DiffTrace:
// Efficient Whole-Program Trace Analysis and Diffing for Debugging"
// (Taheri, Briggs, Burtscher, Gopalakrishnan — IEEE CLUSTER 2019).
//
// The implementation lives under internal/ (one package per subsystem:
// tracing substrate, filters, nested loop recognition, formal concept
// analysis, Jaccard matrices, hierarchical clustering, B-scores, diffNLR,
// the simulated MPI/OpenMP runtimes, and the three evaluation
// applications); the executables live under cmd/, runnable walk-throughs
// under examples/, and the benchmark harness regenerating each of the
// paper's tables and figures in bench_test.go. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package difftrace

// Version identifies this reproduction.
const Version = "1.0.0"
