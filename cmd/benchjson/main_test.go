package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: difftrace
cpu: Intel(R) Xeon(R) CPU
BenchmarkParallel_DiffRun/workers=1-8         	      10	 105000000 ns/op	 4000000 B/op	   30000 allocs/op
BenchmarkParallel_DiffRun/workers=2-8         	      20	  55000000 ns/op	 4100000 B/op	   30100 allocs/op
BenchmarkParallel_DiffRunStages/workers=8-8   	      10	 100000000 ns/op	42000000 summarize-ns/op	31000000 analyze-ns/op	 4000000 B/op	   30000 allocs/op
BenchmarkParLOT_Compression-8                 	     100	  12000000 ns/op	 333.00 MB/s
PASS
`

func TestParseBenchOutput(t *testing.T) {
	doc, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(doc.Benchmarks); got != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", got)
	}
	if doc.CPU != "Intel(R) Xeon(R) CPU" {
		t.Errorf("cpu = %q", doc.CPU)
	}

	byName := map[string]benchLine{}
	for _, b := range doc.Benchmarks {
		byName[b.Name] = b
	}

	w1 := byName["BenchmarkParallel_DiffRun/workers=1"]
	if w1.Iterations != 10 || w1.NsPerOp != 105000000 || w1.BytesPerOp != 4000000 || w1.AllocsPerOp != 30000 {
		t.Errorf("workers=1 line parsed as %+v", w1)
	}

	// Custom b.ReportMetric units land between ns/op and B/op; the
	// field-pair parser must keep them AND still see B/op after them.
	st := byName["BenchmarkParallel_DiffRunStages/workers=8"]
	if st.Extra["summarize-ns/op"] != 42000000 || st.Extra["analyze-ns/op"] != 31000000 {
		t.Errorf("stage metrics = %v", st.Extra)
	}
	if st.BytesPerOp != 4000000 {
		t.Errorf("B/op after custom metrics = %d, want 4000000", st.BytesPerOp)
	}

	if mb := byName["BenchmarkParLOT_Compression"].Extra["MB/s"]; mb != 333 {
		t.Errorf("MB/s = %v, want 333", mb)
	}

	sp := doc.Speedup["BenchmarkParallel_DiffRun"]
	if sp == nil || sp["2"] < 1.9 || sp["2"] > 1.92 {
		t.Errorf("speedup = %v, want 2 -> ~1.91", sp)
	}
}

func TestGuardOverwrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_parallel.json")

	big, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	small := &document{Benchmarks: big.Benchmarks[:1]}

	// No baseline yet: any document may be written.
	if err := guardOverwrite(path, small); err != nil {
		t.Fatalf("fresh path should not be guarded: %v", err)
	}

	data, _ := json.Marshal(big)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Shrinking the baseline is refused; equal or larger passes.
	if err := guardOverwrite(path, small); err == nil {
		t.Fatal("expected refusal when new document has fewer benchmarks")
	} else if !strings.Contains(err.Error(), "-force") {
		t.Errorf("refusal should mention -force: %v", err)
	}
	if err := guardOverwrite(path, big); err != nil {
		t.Fatalf("equal-size document should pass: %v", err)
	}

	// A corrupt baseline never blocks the write.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := guardOverwrite(path, small); err != nil {
		t.Fatalf("corrupt baseline should not be guarded: %v", err)
	}
}

// TestWriteFileCreatesParentDirs covers the fresh-clone case: -out
// profiles/BENCH.json must create the gitignored profiles/ directory chain
// instead of failing.
func TestWriteFileCreatesParentDirs(t *testing.T) {
	doc, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "profiles", "nested", "BENCH.json")
	if err := writeFile(path, doc, false); err != nil {
		t.Fatalf("writeFile into missing parent dirs: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got document
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("written document is not valid JSON: %v", err)
	}
	if len(got.Benchmarks) != len(doc.Benchmarks) {
		t.Fatalf("round-tripped %d benchmarks, want %d", len(got.Benchmarks), len(doc.Benchmarks))
	}
}
