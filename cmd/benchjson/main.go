// benchjson converts `go test -bench` output on stdin into a JSON baseline
// document. Worker-sweep benchmarks (sub-benchmarks named "workers=N")
// additionally get speedup ratios relative to their own workers=1 run, plus
// the host CPU count — a 1.00x sweep on a single-core host is expected, not
// a regression, and the JSON says so.
//
// Custom metrics emitted via b.ReportMetric (e.g. the per-stage breakdowns
// of BenchmarkParallel_DiffRunStages) are preserved under "extra".
//
//	go test -run '^$' -bench Parallel -benchmem . | go run ./cmd/benchjson
//	go test -run '^$' -bench Parallel -benchmem . | go run ./cmd/benchjson -out BENCH_parallel.json
//
// With -out, an existing baseline is only overwritten when the new document
// has at least as many benchmark entries — a partial run (interrupted bench,
// narrower -bench regex) cannot silently clobber a fuller baseline. -force
// overrides the guard.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
)

type benchLine struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (MB/s, summarize-ns/op, ...).
	Extra map[string]float64 `json:"extra,omitempty"`
}

type document struct {
	GoVersion  string                        `json:"go_version"`
	GOOS       string                        `json:"goos"`
	GOARCH     string                        `json:"goarch"`
	CPU        string                        `json:"cpu,omitempty"`
	NumCPU     int                           `json:"num_cpu"`
	Note       string                        `json:"note,omitempty"`
	Benchmarks []benchLine                   `json:"benchmarks"`
	Speedup    map[string]map[string]float64 `json:"speedup,omitempty"`
}

func main() {
	out := flag.String("out", "", "write the JSON document to this file instead of stdout (guarded against shrinking an existing baseline)")
	force := flag.Bool("force", false, "overwrite -out even when the new document has fewer benchmarks than the existing baseline")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		if err := writeDoc(os.Stdout, doc); err != nil {
			fatal(err)
		}
		return
	}
	if err := writeFile(*out, doc, *force); err != nil {
		fatal(err)
	}
}

// writeFile writes the document to path, applying the baseline-shrink guard
// unless force is set. Parent directories are created as needed: profiles/
// is gitignored, so a fresh clone lacks it, and the first `make bench`
// after checkout must not fail on the missing directory.
func writeFile(path string, doc *document, force bool) error {
	if !force {
		if err := guardOverwrite(path, doc); err != nil {
			return err
		}
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := writeDoc(f, doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse reads `go test -bench` output into a document. Benchmark lines are
// "Name-P  iterations  value unit [value unit ...]"; parsing by field pairs
// (instead of a fixed regexp) keeps custom b.ReportMetric units, which the
// test runner interleaves between ns/op and B/op.
func parse(r io.Reader) (*document, error) {
	doc := &document{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			doc.CPU = strings.TrimSpace(cpu)
			continue
		}
		if b, ok := parseBenchLine(line); ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	doc.Speedup = speedups(doc.Benchmarks)
	if len(doc.Speedup) == 0 {
		doc.Speedup = nil
	}
	if doc.NumCPU == 1 {
		doc.Note = "single-CPU host: worker sweeps measure overhead, not speedup; " +
			"expect ratios near 1.00"
	}
	return doc, nil
}

func parseBenchLine(line string) (benchLine, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchLine{}, false
	}
	name := fields[0]
	// Strip the trailing GOMAXPROCS suffix ("-8") from the last path element.
	if i := strings.LastIndexByte(name, '-'); i > 0 && !strings.Contains(name[i:], "/") {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return benchLine{}, false
	}
	b := benchLine{Name: name, Iterations: iters}
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchLine{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
			sawNs = true
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		default:
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[unit] = v
		}
	}
	return b, sawNs
}

// guardOverwrite refuses to replace an existing baseline at path with a
// document covering fewer benchmarks. A missing or unreadable baseline never
// blocks the write (first run, corrupt file: the new document is strictly
// better).
func guardOverwrite(path string, doc *document) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var old document
	if err := json.Unmarshal(data, &old); err != nil {
		return nil
	}
	if len(doc.Benchmarks) < len(old.Benchmarks) {
		return fmt.Errorf("refusing to overwrite %s: new document has %d benchmarks, baseline has %d (use -force to override)",
			path, len(doc.Benchmarks), len(old.Benchmarks))
	}
	return nil
}

func writeDoc(w io.Writer, doc *document) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// speedups groups benchmarks by everything before a trailing "workers=N"
// component and reports ns(workers=1)/ns(workers=N) for each sibling.
func speedups(benches []benchLine) map[string]map[string]float64 {
	type entry struct{ workers, ns float64 }
	groups := map[string][]entry{}
	for _, b := range benches {
		i := strings.LastIndex(b.Name, "workers=")
		if i < 0 {
			continue
		}
		w, err := strconv.ParseFloat(b.Name[i+len("workers="):], 64)
		if err != nil {
			continue
		}
		key := strings.TrimSuffix(b.Name[:i], "/")
		groups[key] = append(groups[key], entry{workers: w, ns: b.NsPerOp})
	}
	out := map[string]map[string]float64{}
	for key, es := range groups {
		var base float64
		for _, e := range es {
			if e.workers == 1 {
				base = e.ns
			}
		}
		if base == 0 {
			continue
		}
		m := map[string]float64{}
		for _, e := range es {
			if e.workers != 1 && e.ns > 0 {
				// Round to two decimals so reruns diff cleanly.
				m[strconv.Itoa(int(e.workers))] = float64(int(base/e.ns*100+0.5)) / 100
			}
		}
		if len(m) > 0 {
			out[key] = m
		}
	}
	return out
}
