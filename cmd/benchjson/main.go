// benchjson converts `go test -bench` output on stdin into a JSON baseline
// document on stdout. Worker-sweep benchmarks (sub-benchmarks named
// "workers=N") additionally get speedup ratios relative to their own
// workers=1 run, plus the host CPU count — a 1.00x sweep on a single-core
// host is expected, not a regression, and the JSON says so.
//
//	go test -run '^$' -bench Parallel -benchmem . | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

type benchLine struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

type document struct {
	GoVersion  string                        `json:"go_version"`
	GOOS       string                        `json:"goos"`
	GOARCH     string                        `json:"goarch"`
	CPU        string                        `json:"cpu,omitempty"`
	NumCPU     int                           `json:"num_cpu"`
	Note       string                        `json:"note,omitempty"`
	Benchmarks []benchLine                   `json:"benchmarks"`
	Speedup    map[string]map[string]float64 `json:"speedup,omitempty"`
}

var lineRE = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	doc := document{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			doc.CPU = strings.TrimSpace(cpu)
			continue
		}
		m := lineRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := benchLine{Name: m[1]}
		b.Iterations, _ = strconv.Atoi(m[2])
		b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			b.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			b.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	doc.Speedup = speedups(doc.Benchmarks)
	if len(doc.Speedup) == 0 {
		doc.Speedup = nil
	}
	if doc.NumCPU == 1 {
		doc.Note = "single-CPU host: worker sweeps measure overhead, not speedup; " +
			"expect ratios near 1.00"
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// speedups groups benchmarks by everything before a trailing "workers=N"
// component and reports ns(workers=1)/ns(workers=N) for each sibling.
func speedups(benches []benchLine) map[string]map[string]float64 {
	type entry struct{ workers, ns float64 }
	groups := map[string][]entry{}
	for _, b := range benches {
		i := strings.LastIndex(b.Name, "workers=")
		if i < 0 {
			continue
		}
		w, err := strconv.ParseFloat(b.Name[i+len("workers="):], 64)
		if err != nil {
			continue
		}
		key := strings.TrimSuffix(b.Name[:i], "/")
		groups[key] = append(groups[key], entry{workers: w, ns: b.NsPerOp})
	}
	out := map[string]map[string]float64{}
	for key, es := range groups {
		var base float64
		for _, e := range es {
			if e.workers == 1 {
				base = e.ns
			}
		}
		if base == 0 {
			continue
		}
		m := map[string]float64{}
		for _, e := range es {
			if e.workers != 1 && e.ns > 0 {
				// Round to two decimals so reruns diff cleanly.
				m[strconv.Itoa(int(e.workers))] = float64(int(base/e.ns*100+0.5)) / 100
			}
		}
		if len(m) > 0 {
			out[key] = m
		}
	}
	return out
}
