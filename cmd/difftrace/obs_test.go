package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"difftrace/internal/obs"
)

// runManifest drives the full CLI path with -manifest (and optionally
// -metrics) and returns the parsed manifest plus the stderr text.
func runManifest(t *testing.T, normal, faulty string, workers int, metrics bool) (*obs.Manifest, string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	var out, errBuf bytes.Buffer
	err := run(&out, options{
		normalPath: normal, faultyPath: faulty,
		filterSpec: "11.mpiall.0K10", attrSpec: "sing.noFreq", linkageName: "ward",
		top: 6, workers: workers,
		manifestPath: path, metrics: metrics, errW: &errBuf,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	return &m, errBuf.String()
}

// TestManifestEndToEnd: a -manifest run emits the full observability record
// — per-stage timings, NLR interning stats, pool utilization, per-level
// counts, and one ingestion entry per input file.
func TestManifestEndToEnd(t *testing.T) {
	normal, faulty := writePair(t)
	m, _ := runManifest(t, normal, faulty, 2, false)

	if m.Tool != "difftrace" || m.WallNs <= 0 {
		t.Errorf("tool/wall = %q/%d", m.Tool, m.WallNs)
	}
	if m.Config["filter"] != "11.mpiall.0K10" || m.Config["workers"] != "2" {
		t.Errorf("config = %v", m.Config)
	}

	stages := map[string]bool{}
	for _, st := range m.Stages {
		if st.WallNs < 0 || st.Count <= 0 {
			t.Errorf("stage %q has count=%d wall=%d", st.Path, st.Count, st.WallNs)
		}
		stages[st.Path] = true
	}
	for _, want := range []string{"ingest", "diffrun", "summarize", "analyze", "analyze/threads/diff"} {
		if !stages[want] {
			t.Errorf("missing stage %q (have %v)", want, m.Stages)
		}
	}

	for _, c := range []string{
		"ingest.bytes", "ingest.events", "nlr.intern.miss", "nlr.intern.hit",
		"core.threads.objects", "core.threads.jsm_cells", "core.processes.attrs",
		"jaccard.cells", "nlr.table.bodies",
	} {
		if m.Counters[c] <= 0 {
			t.Errorf("counter %q = %d, want > 0", c, m.Counters[c])
		}
	}

	sites := map[string]bool{}
	for _, p := range m.Pool {
		sites[p.Site] = true
		if p.Calls <= 0 || p.Items <= 0 {
			t.Errorf("pool site %q stat = %+v", p.Site, p)
		}
	}
	if !sites["core.summarize"] || !sites["jaccard.rows"] {
		t.Errorf("pool sites = %v", sites)
	}

	if len(m.Ingest) != 2 {
		t.Fatalf("ingest entries = %d, want 2 (normal + faulty)", len(m.Ingest))
	}
	if m.Ingest[0].Source != normal || m.Ingest[1].Source != faulty {
		t.Errorf("ingest sources = %q, %q", m.Ingest[0].Source, m.Ingest[1].Source)
	}
	if m.Ingest[0].EventsKept <= 0 {
		t.Errorf("ingest kept = %d", m.Ingest[0].EventsKept)
	}

	if _, ok := m.Histograms["nlr.seq_len"]; !ok {
		t.Errorf("missing nlr.seq_len histogram (have %v)", m.Histograms)
	}
}

// TestManifestGoldenAcrossWorkers: the scrubbed manifest of the full CLI
// path is byte-identical for Workers:1 and Workers:8.
func TestManifestGoldenAcrossWorkers(t *testing.T) {
	normal, faulty := writePair(t)
	golden := func(workers int) []byte {
		m, _ := runManifest(t, normal, faulty, workers, false)
		obs.Scrub(m)
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq, par := golden(1), golden(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("scrubbed CLI manifests differ across worker counts:\n--- w=1 ---\n%s\n--- w=8 ---\n%s", seq, par)
	}
}

// TestMetricsSummary: -metrics writes the human digest to errW.
func TestMetricsSummary(t *testing.T) {
	normal, faulty := writePair(t)
	_, errOut := runManifest(t, normal, faulty, 1, true)
	for _, want := range []string{"== difftrace run:", "stages (", "pool utilization:", "nlr interning:", "counters:"} {
		if !strings.Contains(errOut, want) {
			t.Errorf("metrics summary missing %q:\n%s", want, errOut)
		}
	}
}

// TestManifestSweep: the sweep path aggregates per-combination spans and the
// rank.sweep pool site into the same manifest.
func TestManifestSweep(t *testing.T) {
	normal, faulty := writePair(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	var out bytes.Buffer
	err := run(&out, options{
		normalPath: normal, faultyPath: faulty,
		filterSpec: "11.mpiall.0K10", attrSpec: "sing.noFreq", linkageName: "ward",
		sweep: "11.mpiall.0K10", top: 6, workers: 2,
		manifestPath: path, errW: io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Counters["rank.combos"] != 6 {
		t.Errorf("rank.combos = %d, want 6 (one spec × six attr configs)", m.Counters["rank.combos"])
	}
	found := false
	for _, st := range m.Stages {
		if strings.HasPrefix(st.Path, "rank/11.mpiall.0K10/") {
			found = true
		}
	}
	if !found {
		t.Errorf("no per-combination rank spans in %v", m.Stages)
	}
	hasSite := false
	for _, p := range m.Pool {
		if p.Site == "rank.sweep" {
			hasSite = true
		}
	}
	if !hasSite {
		t.Errorf("pool sites = %+v, want rank.sweep", m.Pool)
	}
}
