package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"difftrace/internal/trace"
)

// writeBigTracePair materializes a pair large enough that a tiny -timeout
// always expires mid-ingest.
func writeBigTracePair(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	build := func(shift int) []byte {
		set := trace.NewTraceSet()
		for p := 0; p < 8; p++ {
			tr := set.Get(trace.TID(p, 0))
			for i := 0; i < 3000; i++ {
				fn := set.Registry.ID(fmt.Sprintf("MPI_Fn_%d", (i+p*shift)%24))
				tr.Append(fn, trace.Enter)
				tr.Append(fn, trace.Exit)
			}
		}
		var buf bytes.Buffer
		if err := trace.WriteSetText(&buf, set); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	n := filepath.Join(dir, "normal.trace")
	f := filepath.Join(dir, "faulty.trace")
	if err := os.WriteFile(n, build(0), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(f, build(1), 0o644); err != nil {
		t.Fatal(err)
	}
	return n, f
}

// TestTimeoutExpiryIsDeadlineError: an expired -timeout surfaces as
// context.DeadlineExceeded (so main maps it to the distinct exit code)
// and -ingest-report still prints the partial read.
func TestTimeoutExpiryIsDeadlineError(t *testing.T) {
	normal, faulty := writeBigTracePair(t)
	var buf bytes.Buffer
	err := run(&buf, options{
		normalPath: normal, faultyPath: faulty,
		filterSpec: "11.mpiall.0K10", attrSpec: "sing.noFreq", linkageName: "ward",
		ingestReport: true,
		timeout:      time.Nanosecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if !strings.Contains(buf.String(), "ingest") {
		t.Fatalf("partial ingest report not printed on expiry:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), normal) {
		t.Fatalf("partial ingest report does not name its source:\n%s", buf.String())
	}
}

// TestTimeoutGenerousRunSucceeds: a comfortable -timeout changes nothing.
func TestTimeoutGenerousRunSucceeds(t *testing.T) {
	normal, faulty := writeBigTracePair(t)
	var with, without bytes.Buffer
	base := options{
		normalPath: normal, faultyPath: faulty,
		filterSpec: "11.mpiall.0K10", attrSpec: "sing.noFreq", linkageName: "ward",
	}
	o := base
	o.timeout = time.Minute
	if err := run(&with, o); err != nil {
		t.Fatal(err)
	}
	if err := run(&without, base); err != nil {
		t.Fatal(err)
	}
	if with.String() != without.String() {
		t.Fatal("-timeout changed the output of a run that fit the budget")
	}
	if !strings.Contains(with.String(), "B-score") {
		t.Fatalf("run produced no result:\n%s", with.String())
	}
}

// TestExitCodeMapping pins the wrapper-visible contract: deadline expiry
// exits 3, everything else 1.
func TestExitCodeMapping(t *testing.T) {
	if got := exitCode(context.DeadlineExceeded); got != exitTimeout {
		t.Fatalf("deadline exit = %d, want %d", got, exitTimeout)
	}
	if got := exitCode(fmt.Errorf("ingest: %w", context.DeadlineExceeded)); got != exitTimeout {
		t.Fatalf("wrapped deadline exit = %d, want %d", got, exitTimeout)
	}
	if got := exitCode(errors.New("parse error")); got != exitFailure {
		t.Fatalf("generic exit = %d, want %d", got, exitFailure)
	}
	if got := exitCode(context.Canceled); got != exitFailure {
		t.Fatalf("cancel exit = %d, want %d (only the deadline gets 3)", got, exitFailure)
	}
}
