package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"difftrace/internal/apps/oddeven"
	"difftrace/internal/faults"
	"difftrace/internal/parlot"
)

// writeBinaryPair generates a normal/faulty PLOT1 pair — the format the
// -stream path requires.
func writeBinaryPair(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	write := func(name string, plan *faults.Plan) string {
		tr := parlot.NewTracer(parlot.MainImage)
		if _, err := oddeven.Run(oddeven.Config{Procs: 16, Seed: 5, Plan: plan, Tracer: tr}); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := parlot.WriteSetBinary(f, tr.Collect()); err != nil {
			t.Fatal(err)
		}
		return path
	}
	plan, _ := faults.Named("swapBug")
	return write("normal.bin", nil), write("faulty.bin", plan)
}

// TestRunStreamMatchesBatchDeterminism: the CLI's -stream path produces
// byte-identical stdout to the materialized path on the same PLOT1 files,
// across the report/heatmap/diffnlr surfaces and worker counts.
func TestRunStreamMatchesBatchDeterminism(t *testing.T) {
	normal, faulty := writeBinaryPair(t)
	base := options{normalPath: normal, faultyPath: faulty,
		filterSpec: "11.mpiall.0K10", attrSpec: "sing.actual", linkageName: "ward",
		diffTarget: "5.0", top: 6, heatmap: true, lattice: true, report: true}

	var batch bytes.Buffer
	if err := run(&batch, base); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 8} {
		o := base
		o.stream = true
		o.workers = w
		var stream bytes.Buffer
		if err := run(&stream, o); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(batch.Bytes(), stream.Bytes()) {
			t.Fatalf("workers=%d: -stream output differs from batch:\n--- batch ---\n%s\n--- stream ---\n%s",
				w, batch.String(), stream.String())
		}
	}
}

// TestRunStreamErrors: -stream refuses text inputs and the batch-only
// modes, each with an error naming the conflict.
func TestRunStreamErrors(t *testing.T) {
	textNormal, textFaulty := writePair(t)
	binNormal, binFaulty := writeBinaryPair(t)
	for _, tc := range []struct {
		name string
		o    options
		want string
	}{
		{"text-input", options{normalPath: textNormal, faultyPath: textFaulty, stream: true,
			filterSpec: "11.mpiall.0K10", attrSpec: "sing.noFreq", linkageName: "ward"}, "PLOT1"},
		{"sweep", options{normalPath: binNormal, faultyPath: binFaulty, stream: true,
			sweep: "11.mpiall.0K10", attrSpec: "sing.noFreq", linkageName: "ward"}, "-sweep"},
		{"triage", options{normalPath: binNormal, faultyPath: binFaulty, stream: true, triage: true, report: true,
			filterSpec: "11.mpiall.0K10", attrSpec: "sing.noFreq", linkageName: "ward"}, "-triage"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(&buf, tc.o)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}
