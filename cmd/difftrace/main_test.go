package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"difftrace/internal/apps/oddeven"
	"difftrace/internal/faults"
	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

// writePair generates a normal/faulty trace-file pair for the CLI to chew.
func writePair(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	write := func(name string, plan *faults.Plan) string {
		tr := parlot.NewTracer(parlot.MainImage)
		if _, err := oddeven.Run(oddeven.Config{Procs: 16, Seed: 5, Plan: plan, Tracer: tr}); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := trace.WriteSetText(f, tr.Collect()); err != nil {
			t.Fatal(err)
		}
		return path
	}
	plan, _ := faults.Named("swapBug")
	return write("normal.trace", nil), write("faulty.trace", plan)
}

func TestSplitList(t *testing.T) {
	if got := splitList(""); got != nil {
		t.Errorf("empty = %v", got)
	}
	got := splitList("a, b ,,c")
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("split = %v", got)
	}
}

func TestRunSingleComparison(t *testing.T) {
	normal, faulty := writePair(t)
	var buf bytes.Buffer
	err := run(&buf, options{normalPath: normal, faultyPath: faulty,
		filterSpec: "11.mpiall.0K10", attrSpec: "sing.actual", linkageName: "ward",
		diffTarget: "5.0", top: 6, heatmap: true})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"B-score (threads):",
		"top thread suspects:  5.0",
		"JSM_D heatmap",
		"diffNLR(5.0)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunProcessLevelDiffNLR(t *testing.T) {
	normal, faulty := writePair(t)
	var buf bytes.Buffer
	err := run(&buf, options{normalPath: normal, faultyPath: faulty,
		filterSpec: "11.mpiall.0K10", attrSpec: "sing.actual", linkageName: "ward",
		diffTarget: "5", top: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "diffNLR(5.") {
		t.Errorf("process diffNLR missing:\n%s", buf.String())
	}
}

func TestRunSweepMode(t *testing.T) {
	normal, faulty := writePair(t)
	var buf bytes.Buffer
	err := run(&buf, options{normalPath: normal, faultyPath: faulty,
		attrSpec: "sing.noFreq", linkageName: "ward",
		sweep: "11.mpiall.0K10,11.mpisr.0K10", top: 6})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "B-score") || !strings.Contains(out, "11.mpisr.0K10") {
		t.Errorf("sweep output:\n%s", out)
	}
	if strings.Count(out, "11.mpiall.0K10") != 6 { // one row per attr config
		t.Errorf("sweep rows wrong:\n%s", out)
	}
}

func TestRunLatticeMode(t *testing.T) {
	normal, faulty := writePair(t)
	var buf bytes.Buffer
	err := run(&buf, options{normalPath: normal, faultyPath: faulty,
		filterSpec: "11.mpiall.0K10", attrSpec: "sing.noFreq", linkageName: "ward",
		top: 6, lattice: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "concept lattice") {
		t.Errorf("lattice output missing:\n%s", buf.String())
	}
}

func TestRunReportMode(t *testing.T) {
	normal, faulty := writePair(t)
	var buf bytes.Buffer
	err := run(&buf, options{normalPath: normal, faultyPath: faulty,
		filterSpec: "11.mpiall.0K10", attrSpec: "sing.actual", linkageName: "ward",
		top: 3, report: true})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "DiffTrace report") || !strings.Contains(out, "diffNLR(5.0)") {
		t.Errorf("report output:\n%s", out)
	}
}

func TestRunTriageMode(t *testing.T) {
	normal, faulty := writePair(t)
	var buf bytes.Buffer
	err := run(&buf, options{normalPath: normal, faultyPath: faulty,
		filterSpec: "11.mpiall.0K10", attrSpec: "sing.actual", linkageName: "ward",
		top: 3, report: true, triage: true})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"companion analyses", "STAT stack classes", "AutomaDeD", "relative progress"} {
		if !strings.Contains(out, want) {
			t.Errorf("triage output missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	normal, faulty := writePair(t)
	var buf bytes.Buffer
	cases := []struct {
		name                                         string
		normalP, faultyP, flt, attrs, linkage, diffT string
	}{
		{"missing normal", "/nope", faulty, "11.0K10", "sing.noFreq", "ward", ""},
		{"missing faulty", normal, "/nope", "11.0K10", "sing.noFreq", "ward", ""},
		{"bad filter", normal, faulty, "zz", "sing.noFreq", "ward", ""},
		{"bad attr", normal, faulty, "11.0K10", "zz", "ward", ""},
		{"bad linkage", normal, faulty, "11.0K10", "sing.noFreq", "zz", ""},
		{"bad target", normal, faulty, "11.0K10", "sing.noFreq", "ward", "99.9"},
	}
	for _, c := range cases {
		err := run(&buf, options{normalPath: c.normalP, faultyPath: c.faultyP,
			filterSpec: c.flt, attrSpec: c.attrs, linkageName: c.linkage,
			diffTarget: c.diffT, top: 6})
		if err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
