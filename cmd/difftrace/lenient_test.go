package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"difftrace/internal/apps/oddeven"
	"difftrace/internal/faults"
	"difftrace/internal/parlot"
	"difftrace/internal/resilience/chaos"
)

// writeBinaryFaulty emits the swap-bug run in PLOT1 binary form.
func writeBinaryFaulty(t *testing.T) string {
	t.Helper()
	tr := parlot.NewTracer(parlot.MainImage)
	plan, _ := faults.Named("swapBug")
	if _, err := oddeven.Run(oddeven.Config{Procs: 16, Seed: 5, Plan: plan, Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "faulty.plot")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := parlot.WriteSetBinary(f, tr.Collect()); err != nil {
		t.Fatal(err)
	}
	return path
}

// corruptFile applies op to the file at path and writes the result beside it.
func corruptFile(t *testing.T, path string, op chaos.Operator) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := op.Apply(data, rand.New(rand.NewSource(9)))
	cp := path + "." + op.Name
	if err := os.WriteFile(cp, out, 0o644); err != nil {
		t.Fatal(err)
	}
	return cp
}

// TestRunLenientSalvagesEveryCorruption: for every chaos operator,
// `difftrace -lenient` succeeds, still prints a suspect ranking, and
// surfaces the degradation summary whenever anything was salvaged.
func TestRunLenientSalvagesEveryCorruption(t *testing.T) {
	normal, faulty := writePair(t)
	binFaulty := writeBinaryFaulty(t)
	for _, op := range chaos.All() {
		op := op
		t.Run(op.Name, func(t *testing.T) {
			src := faulty
			if op.Binary {
				src = binFaulty
			}
			corrupted := corruptFile(t, src, op)
			var buf bytes.Buffer
			err := run(&buf, options{normalPath: normal, faultyPath: corrupted,
				filterSpec: "11.mpiall.0K10", attrSpec: "sing.noFreq", linkageName: "ward",
				top: 6, lenient: true})
			if err != nil {
				t.Fatalf("lenient run: %v", err)
			}
			out := buf.String()
			if !strings.Contains(out, "top thread suspects") {
				t.Errorf("no suspect ranking in lenient output:\n%s", out)
			}
			if op.WantStrictError && !strings.Contains(out, "ingest ") {
				t.Errorf("salvage happened but no ingest summary printed:\n%s", out)
			}
		})
	}
}

// TestRunStrictCorruptionFails: without -lenient, guaranteed corruption
// fails with an error naming the file (and the line, for text input).
func TestRunStrictCorruptionFails(t *testing.T) {
	normal, faulty := writePair(t)
	binFaulty := writeBinaryFaulty(t)
	for _, op := range chaos.All() {
		if !op.WantStrictError {
			continue
		}
		op := op
		t.Run(op.Name, func(t *testing.T) {
			src := faulty
			if op.Binary {
				src = binFaulty
			}
			corrupted := corruptFile(t, src, op)
			var buf bytes.Buffer
			err := run(&buf, options{normalPath: normal, faultyPath: corrupted,
				filterSpec: "11.mpiall.0K10", attrSpec: "sing.noFreq", linkageName: "ward", top: 6})
			if err == nil {
				t.Fatal("strict run accepted corrupted input")
			}
			if !strings.Contains(err.Error(), corrupted) {
				t.Errorf("error does not name the file: %v", err)
			}
			if !op.Binary && !strings.Contains(err.Error(), "line ") {
				t.Errorf("error does not name the line: %v", err)
			}
		})
	}
}

// TestRunIngestReportFlag: -ingest-report prints the summary even when the
// read was perfectly clean.
func TestRunIngestReportFlag(t *testing.T) {
	normal, faulty := writePair(t)
	var buf bytes.Buffer
	err := run(&buf, options{normalPath: normal, faultyPath: faulty,
		filterSpec: "11.mpiall.0K10", attrSpec: "sing.noFreq", linkageName: "ward",
		top: 6, lenient: true, ingestReport: true})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ingest "+normal) || !strings.Contains(out, "clean") {
		t.Errorf("ingest report missing for clean read:\n%s", out)
	}
}
