package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestStreamRefusalMessages pins the -stream conflict errors: each must
// name the refused flag and point the user at the batch path.
func TestStreamRefusalMessages(t *testing.T) {
	normal, faulty := writeBinaryPair(t)
	cases := []struct {
		name string
		opt  func(*options)
		want string
	}{
		{"sweep", func(o *options) { o.sweep = "11.mpiall.0K10" },
			"-stream does not support -sweep: the ranking sweep re-filters materialized trace sets; drop -stream to run the sweep on the batch path"},
		{"triage", func(o *options) { o.triage = true },
			"-stream does not support -triage: the companion analyses read materialized traces; drop -stream to run them on the batch path"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := options{normalPath: normal, faultyPath: faulty,
				filterSpec: "11.mpiall.0K10", attrSpec: "sing.noFreq", linkageName: "ward",
				top: 6, stream: true}
			c.opt(&o)
			var out bytes.Buffer
			err := run(&out, o)
			if err == nil {
				t.Fatal("conflicting flags did not error")
			}
			if err.Error() != c.want {
				t.Fatalf("error = %q\nwant    %q", err.Error(), c.want)
			}
		})
	}
}

// TestFindDivergenceFlagConflicts: -json needs -find-divergence, and the
// explorer has no report to read in sweep mode.
func TestFindDivergenceFlagConflicts(t *testing.T) {
	normal, faulty := writeBinaryPair(t)
	base := options{normalPath: normal, faultyPath: faulty,
		filterSpec: "11.mpiall.0K10", attrSpec: "sing.noFreq", linkageName: "ward", top: 6}

	o := base
	o.jsonOut = true
	if err := run(&bytes.Buffer{}, o); err == nil || !strings.Contains(err.Error(), "-find-divergence") {
		t.Fatalf("-json alone: err = %v, want mention of -find-divergence", err)
	}
	o = base
	o.findDivergence = true
	o.sweep = "11.mpiall.0K10"
	if err := run(&bytes.Buffer{}, o); err == nil || !strings.Contains(err.Error(), "-sweep") {
		t.Fatalf("-find-divergence -sweep: err = %v, want mention of -sweep", err)
	}
}

// TestFindDivergenceCLIDeterminism: the -find-divergence output is
// byte-identical across worker counts and across batch vs -stream on the
// same PLOT1 pair, and names the injected fault's rank (swapBug hits p5).
func TestFindDivergenceCLIDeterminism(t *testing.T) {
	normal, faulty := writeBinaryPair(t)
	base := options{normalPath: normal, faultyPath: faulty,
		filterSpec: "11.mpiall.0K10", attrSpec: "sing.noFreq", linkageName: "ward",
		top: 6, findDivergence: true}

	var ref bytes.Buffer
	refOpts := base
	refOpts.workers = 1
	if err := run(&ref, refOpts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ref.String(), "divergence explorer") {
		t.Fatalf("missing divergence section:\n%s", ref.String())
	}
	if !strings.Contains(ref.String(), "5.0") {
		t.Fatalf("report does not implicate the faulty rank 5:\n%s", ref.String())
	}
	for _, w := range []int{8} {
		for _, stream := range []bool{false, true} {
			o := base
			o.workers = w
			o.stream = stream
			var out bytes.Buffer
			if err := run(&out, o); err != nil {
				t.Fatal(err)
			}
			if out.String() != ref.String() {
				t.Errorf("workers=%d stream=%v output differs from workers=1 batch:\n--- got ---\n%s--- want ---\n%s",
					w, stream, out.String(), ref.String())
			}
		}
	}
}

// TestFindDivergenceJSON: -find-divergence -json emits exactly one valid
// JSON document on stdout — no text around it — with both levels present.
func TestFindDivergenceJSON(t *testing.T) {
	normal, faulty := writeBinaryPair(t)
	o := options{normalPath: normal, faultyPath: faulty,
		filterSpec: "11.mpiall.0K10", attrSpec: "sing.noFreq", linkageName: "ward",
		top: 6, findDivergence: true, jsonOut: true}
	var out bytes.Buffer
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Threads *struct {
			Objects int `json:"objects"`
			Items   []struct {
				Object string `json:"object"`
				Func   string `json:"func"`
			} `json:"items"`
		} `json:"threads"`
		Processes *struct{} `json:"processes"`
	}
	dec := json.NewDecoder(&out)
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("stdout is not a JSON document: %v\n%s", err, out.String())
	}
	if dec.More() {
		t.Fatalf("stdout carries trailing content after the JSON document:\n%s", out.String())
	}
	if doc.Threads == nil || doc.Processes == nil {
		t.Fatalf("JSON document missing levels:\n%s", out.String())
	}
	if doc.Threads.Objects == 0 || len(doc.Threads.Items) == 0 {
		t.Fatalf("JSON thread level empty:\n%s", out.String())
	}
}
