// Command difftrace is the DiffTrace analysis front end: it diffs a normal
// execution's trace file against a faulty one (both produced by
// cmd/tracegen, or by any tool emitting the same text format) and reports
// suspicious traces, B-scores, and diffNLR views.
//
// One parameter combination:
//
//	difftrace -normal normal.trace -faulty faulty.trace \
//	    -filter 11.mpiall.0K10 -attr sing.actual -linkage ward -diffnlr 5.0
//
// A ranking-table sweep over several filters and every attribute config:
//
//	difftrace -normal n.trace -faulty f.trace \
//	    -sweep 11.mpi.cust.0K10,11.mpicol.cust.0K10 -custom '^CPU_'
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"difftrace/internal/attr"
	"difftrace/internal/automaded"
	"difftrace/internal/cluster"
	"difftrace/internal/core"
	"difftrace/internal/filter"
	"difftrace/internal/parlot"
	"difftrace/internal/progress"
	"difftrace/internal/rank"
	"difftrace/internal/stat"
	"difftrace/internal/trace"
)

func main() {
	normalPath := flag.String("normal", "", "trace file of the normal execution (required)")
	faultyPath := flag.String("faulty", "", "trace file of the faulty execution (required)")
	filterSpec := flag.String("filter", "11.mpiall.0K10", "filter spec (see Table I; e.g. 11.plt.mem.cust.0K10)")
	attrSpec := flag.String("attr", "sing.noFreq", "attribute config: {sing|doub}.{actual|log10|noFreq}")
	linkageName := flag.String("linkage", "ward", "linkage: single|complete|average|weighted|centroid|median|ward")
	custom := flag.String("custom", "", "comma-separated custom regexps for the 'cust' filter category")
	diffTarget := flag.String("diffnlr", "", "render diffNLR for this trace (e.g. 5.0) or process (e.g. 5)")
	sweep := flag.String("sweep", "", "comma-separated filter specs: run the full ranking-table sweep instead")
	top := flag.Int("top", 6, "suspects to list")
	showHeatmap := flag.Bool("heatmap", false, "print the JSM_D heatmap")
	showLattice := flag.Bool("lattice", false, "build and print the faulty run's concept lattice (thread level)")
	color := flag.Bool("color", false, "ANSI colors in diffNLR output")
	report := flag.Bool("report", false, "print the full debugging report (suspects + diffNLRs of the top suspects)")
	triage := flag.Bool("triage", false, "append the companion analyses: STAT stack classes, AutomaDeD outliers, progress ranking")
	flag.Parse()

	if *normalPath == "" || *faultyPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *normalPath, *faultyPath, *filterSpec, *attrSpec, *linkageName,
		*custom, *diffTarget, *sweep, *top, *showHeatmap, *showLattice, *color, *report, *triage); err != nil {
		fmt.Fprintln(os.Stderr, "difftrace:", err)
		os.Exit(1)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func run(w io.Writer, normalPath, faultyPath, filterSpec, attrSpec, linkageName, custom,
	diffTarget, sweep string, top int, showHeatmap, showLattice, color, report, triage bool) error {
	// Both runs must share one registry so function IDs align.
	reg := trace.NewRegistry()
	normal, err := readSet(normalPath, reg)
	if err != nil {
		return err
	}
	faulty, err := readSet(faultyPath, reg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "normal: %s   faulty: %s\n", normal, faulty)

	linkage, err := cluster.ParseMethod(linkageName)
	if err != nil {
		return err
	}
	customs := splitList(custom)

	if sweep != "" {
		tbl, err := rank.Sweep(normal, faulty, rank.Request{
			Specs:          splitList(sweep),
			CustomPatterns: customs,
			Linkage:        linkage,
			TopK:           top,
		})
		if err != nil {
			return err
		}
		fmt.Fprint(w, tbl.Render())
		return nil
	}

	flt, err := filter.ParseSpec(filterSpec, customs...)
	if err != nil {
		return err
	}
	ac, err := attr.ParseConfig(attrSpec)
	if err != nil {
		return err
	}
	rep, err := core.DiffRun(normal, faulty, core.Config{
		Filter: flt, Attr: ac, Linkage: linkage, BuildLattices: showLattice,
	})
	if err != nil {
		return err
	}

	if report {
		if err := rep.WriteReport(w, core.RenderOptions{
			TopK:     top,
			Heatmaps: showHeatmap,
			Lattices: showLattice,
			Color:    color,
		}); err != nil {
			return err
		}
		if triage {
			writeTriage(w, flt, normal, faulty)
		}
		return nil
	}

	fmt.Fprintf(w, "filter=%s attrs=%s linkage=%s\n", flt, ac, linkage)
	fmt.Fprintf(w, "B-score (threads):   %.3f\n", rep.Threads.BScore)
	fmt.Fprintf(w, "B-score (processes): %.3f\n", rep.Processes.BScore)
	fmt.Fprintf(w, "top thread suspects:  %s\n", strings.Join(rep.Threads.TopSuspects(top, 1e-9), ", "))
	fmt.Fprintf(w, "top process suspects: %s\n", strings.Join(rep.Processes.TopSuspects(top, 1e-9), ", "))

	if showHeatmap {
		fmt.Fprintln(w, "\nJSM_D heatmap (threads):")
		fmt.Fprint(w, rep.Threads.JSMD.Heatmap())
	}
	if showLattice && rep.Threads.Faulty.Lattice != nil {
		fmt.Fprintln(w, "\nconcept lattice (faulty run, threads):")
		fmt.Fprint(w, rep.Threads.Faulty.Lattice.Render())
	}
	if diffTarget != "" {
		level := rep.Threads
		if !strings.Contains(diffTarget, ".") {
			level = rep.Processes
		}
		d, err := rep.DiffNLR(level, diffTarget)
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, d.Render(color))
	}
	return nil
}

// writeTriage appends the companion analyses (§VI's related-work views) to
// the report: STAT stack classes of the faulty run, AutomaDeD single-run
// outliers, and the relative progress ranking.
func writeTriage(w io.Writer, flt *filter.Filter, normal, faulty *trace.TraceSet) {
	fmt.Fprintln(w, "== companion analyses ==")
	fmt.Fprintln(w, "STAT stack classes (faulty run):")
	fmt.Fprint(w, stat.Build(faulty).Render())
	fn := flt.ApplySet(normal)
	ff := flt.ApplySet(faulty)
	fmt.Fprintln(w, "\nAutomaDeD single-run outliers:")
	fmt.Fprint(w, automaded.Analyze(ff).Render())
	fmt.Fprintln(w, "")
	fmt.Fprint(w, progress.Analyze(fn, ff, flt.K).Render())
}

// readSet loads a trace file in either format, sniffing the binary magic.
func readSet(path string, reg *trace.Registry) (*trace.TraceSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic, err := br.Peek(5)
	if err == nil && string(magic) == "PLOT1" {
		return parlot.ReadSetBinary(br, reg)
	}
	return trace.ReadSetText(br, reg)
}
