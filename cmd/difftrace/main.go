// Command difftrace is the DiffTrace analysis front end: it diffs a normal
// execution's trace file against a faulty one (both produced by
// cmd/tracegen, or by any tool emitting the same text format) and reports
// suspicious traces, B-scores, and diffNLR views.
//
// One parameter combination:
//
//	difftrace -normal normal.trace -faulty faulty.trace \
//	    -filter 11.mpiall.0K10 -attr sing.actual -linkage ward -diffnlr 5.0
//
// A ranking-table sweep over several filters and every attribute config:
//
//	difftrace -normal n.trace -faulty f.trace \
//	    -sweep 11.mpi.cust.0K10,11.mpicol.cust.0K10 -custom '^CPU_'
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux for -pprof
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"difftrace/internal/attr"
	"difftrace/internal/automaded"
	"difftrace/internal/cluster"
	"difftrace/internal/core"
	"difftrace/internal/filter"
	"difftrace/internal/obs"
	"difftrace/internal/obs/olog"
	"difftrace/internal/parlot"
	"difftrace/internal/progress"
	"difftrace/internal/rank"
	"difftrace/internal/resilience"
	"difftrace/internal/stat"
	"difftrace/internal/trace"
)

// options carries every knob of one CLI invocation; tests drive run()
// directly with a literal.
type options struct {
	normalPath, faultyPath string
	filterSpec, attrSpec   string
	linkageName            string
	custom                 string // comma-separated custom regexps
	diffTarget             string // trace/process to render diffNLR for
	sweep                  string // comma-separated specs for ranking sweep
	top                    int
	heatmap, lattice       bool
	color, report, triage  bool
	// findDivergence appends the divergence explorer view: the first point
	// each aligned normal/faulty NLR pair parts ways, annotated with the
	// JSM suspect ranking. jsonOut switches it to the machine-readable
	// document (and suppresses the text output around it).
	findDivergence bool
	jsonOut        bool
	// stream analyzes PLOT1 inputs without ever expanding them: traces
	// stay compressed and each pipeline stage re-decodes on the fly.
	// Output is byte-identical to the materialized path on the same bytes.
	stream bool
	// lenient salvages corrupt/truncated trace files instead of failing
	// and runs the pipeline resiliently (per-trace failures isolated).
	lenient bool
	// ingestReport always prints the per-trace degradation report, even
	// for clean reads.
	ingestReport bool
	// workers bounds the intra-run (and sweep) parallelism; output is
	// identical for every value.
	workers int
	// manifestPath, when set, writes the run manifest (config, per-stage
	// timings, metrics, pool utilization, ingestion totals) as JSON there.
	manifestPath string
	// metrics prints the human-readable metrics summary to errW.
	metrics bool
	// pprofAddr serves net/http/pprof on this address for the run.
	pprofAddr string
	// timeout aborts the whole run (ingest and analysis) once elapsed;
	// 0 disables. An expired run exits with exitTimeout, and a partial
	// ingest report still prints under -ingest-report so the operator
	// sees how far the read got.
	timeout time.Duration
	// logJSON emits structured JSON log lines (start/finish, trace ID,
	// config) to errW — the same line shape difftraced writes, so one
	// pipeline can consume logs from both.
	logJSON bool
	// traceID overrides the minted request trace ID, letting a caller
	// correlate a CLI run with its own wider trace. Empty mints one.
	traceID string
	// errW receives the -metrics summary and pprof notices; nil means
	// os.Stderr (tests substitute a buffer).
	errW io.Writer
}

func main() {
	normalPath := flag.String("normal", "", "trace file of the normal execution (required)")
	faultyPath := flag.String("faulty", "", "trace file of the faulty execution (required)")
	filterSpec := flag.String("filter", "11.mpiall.0K10", "filter spec (see Table I; e.g. 11.plt.mem.cust.0K10)")
	attrSpec := flag.String("attr", "sing.noFreq", "attribute config: {sing|doub}.{actual|log10|noFreq}")
	linkageName := flag.String("linkage", "ward", "linkage: single|complete|average|weighted|centroid|median|ward")
	custom := flag.String("custom", "", "comma-separated custom regexps for the 'cust' filter category")
	diffTarget := flag.String("diffnlr", "", "render diffNLR for this trace (e.g. 5.0) or process (e.g. 5)")
	sweep := flag.String("sweep", "", "comma-separated filter specs: run the full ranking-table sweep instead")
	top := flag.Int("top", 6, "suspects to list")
	showHeatmap := flag.Bool("heatmap", false, "print the JSM_D heatmap")
	showLattice := flag.Bool("lattice", false, "build and print the faulty run's concept lattice (thread level)")
	color := flag.Bool("color", false, "ANSI colors in diffNLR output")
	report := flag.Bool("report", false, "print the full debugging report (suspects + diffNLRs of the top suspects)")
	triage := flag.Bool("triage", false, "append the companion analyses: STAT stack classes, AutomaDeD outliers, progress ranking")
	findDivergence := flag.Bool("find-divergence", false, "report the first divergence point of every normal/faulty NLR pair (divergence explorer)")
	jsonOut := flag.Bool("json", false, "with -find-divergence: emit the machine-readable JSON document instead of the rendered table")
	stream := flag.Bool("stream", false, "stream PLOT1 inputs: analyze without expanding the compressed traces (same output, bounded memory)")
	lenient := flag.Bool("lenient", false, "salvage corrupt/truncated trace files instead of failing, and isolate per-trace pipeline failures")
	ingestReport := flag.Bool("ingest-report", false, "print the per-trace ingestion/degradation report")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for the analysis pipeline (results do not depend on this)")
	manifest := flag.String("manifest", "", "write the run manifest (per-stage timings, metrics, pool utilization, ingestion totals) as JSON to this file")
	metrics := flag.Bool("metrics", false, "print a human-readable metrics summary to stderr after the run")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the duration of the run")
	timeout := flag.Duration("timeout", 0, "abort the run after this long (exit code 3; -ingest-report still prints the partial read)")
	logJSON := flag.Bool("log-json", false, "emit structured JSON log lines (with the run's trace ID) to stderr")
	traceID := flag.String("trace-id", "", "use this request trace ID instead of minting one (correlates the run with a wider trace)")
	flag.Parse()

	if *normalPath == "" || *faultyPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	err := run(os.Stdout, options{
		normalPath: *normalPath, faultyPath: *faultyPath,
		filterSpec: *filterSpec, attrSpec: *attrSpec, linkageName: *linkageName,
		custom: *custom, diffTarget: *diffTarget, sweep: *sweep, top: *top,
		heatmap: *showHeatmap, lattice: *showLattice, color: *color,
		report: *report, triage: *triage,
		findDivergence: *findDivergence, jsonOut: *jsonOut,
		stream: *stream, lenient: *lenient, ingestReport: *ingestReport, workers: *workers,
		manifestPath: *manifest, metrics: *metrics, pprofAddr: *pprofAddr,
		timeout: *timeout, logJSON: *logJSON, traceID: *traceID,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "difftrace:", err)
		os.Exit(exitCode(err))
	}
}

// Exit codes: 1 generic failure, 2 usage (flag package convention),
// 3 the -timeout deadline expired — distinct so wrappers can tell "the
// input is bad" from "the input is too big for the budget".
const (
	exitFailure = 1
	exitTimeout = 3
)

func exitCode(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return exitTimeout
	}
	return exitFailure
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func run(w io.Writer, o options) error {
	errW := o.errW
	if errW == nil {
		errW = io.Writer(os.Stderr)
	}
	// A nil ctx is never cancelled; -timeout arms a real deadline that
	// every stage (ingest, summarize, cluster, sweep) observes.
	var ctx context.Context
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(context.Background(), o.timeout)
		defer cancel()
	}
	// Every run carries a request trace ID — caller-supplied or minted —
	// so a CLI invocation correlates with wider traces and its own JSON
	// log lines. The ID is stamped on the manifest but scrubbed from any
	// artifact meant to be deterministic.
	tid := obs.TraceID(o.traceID)
	if tid.IsZero() {
		tid = obs.NewTraceID()
	}
	if ctx != nil {
		ctx = obs.WithTraceID(ctx, tid)
	}
	var logger *olog.Logger
	if o.logJSON {
		logger = olog.New(errW, olog.Info).With(
			olog.Str("component", "difftrace"),
			olog.Str("trace_id", string(tid)))
	}
	logger.Info("run starting",
		olog.Str("normal", o.normalPath),
		olog.Str("faulty", o.faultyPath),
		olog.Str("filter", o.filterSpec),
		olog.Str("attr", o.attrSpec),
		olog.Str("linkage", o.linkageName),
		olog.Bool("stream", o.stream),
		olog.Bool("lenient", o.lenient),
		olog.Int("workers", o.workers))
	// The obs run exists only when some output will consume it; a nil run
	// keeps every instrumented layer on its zero-cost fast path.
	var obsRun *obs.Run
	if o.manifestPath != "" || o.metrics {
		obsRun = obs.NewRun("difftrace")
		obsRun.SetTraceID(tid)
		obsRun.SetConfig("normal", o.normalPath)
		obsRun.SetConfig("faulty", o.faultyPath)
		obsRun.SetConfig("filter", o.filterSpec)
		obsRun.SetConfig("attr", o.attrSpec)
		obsRun.SetConfig("linkage", o.linkageName)
		obsRun.SetConfig("sweep", o.sweep)
		obsRun.SetConfig("stream", strconv.FormatBool(o.stream))
		obsRun.SetConfig("find_divergence", strconv.FormatBool(o.findDivergence))
		obsRun.SetConfig("lenient", strconv.FormatBool(o.lenient))
		obsRun.SetConfig("workers", strconv.Itoa(o.workers))
	}
	if o.pprofAddr != "" {
		ln, err := net.Listen("tcp", o.pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		defer ln.Close()
		fmt.Fprintf(errW, "pprof: serving http://%s/debug/pprof/\n", ln.Addr())
		//lint:allow nakedgoroutine pprof debug server rides outside the pipeline; it is bounded by the listener closed on return, not by the Workers budget
		go http.Serve(ln, nil) //nolint:errcheck // closed via defer on return
	}

	// Manifest/metrics emission runs on every exit path — a strict read
	// failure or degraded analysis still leaves its observability record
	// (the readers count bytes/lines even on the error path).
	defer logger.Info("run finished")
	defer func() {
		if obsRun == nil {
			return
		}
		if o.metrics {
			obsRun.WriteSummary(errW)
		}
		if o.manifestPath != "" {
			if werr := writeManifest(o.manifestPath, obsRun); werr != nil {
				fmt.Fprintln(errW, "difftrace: manifest:", werr)
			}
		}
	}()

	// The sweep and triage views re-analyze materialized trace sets; they
	// are batch-only by construction, so fail fast before any ingest work,
	// naming the refused flag and the way out.
	if o.stream && o.sweep != "" {
		return errors.New("-stream does not support -sweep: the ranking sweep re-filters materialized trace sets; drop -stream to run the sweep on the batch path")
	}
	if o.stream && o.triage {
		return errors.New("-stream does not support -triage: the companion analyses read materialized traces; drop -stream to run them on the batch path")
	}
	if o.jsonOut && !o.findDivergence {
		return errors.New("-json only formats the divergence explorer; pair it with -find-divergence")
	}
	if o.findDivergence && o.sweep != "" {
		return errors.New("-find-divergence does not combine with -sweep: the sweep produces ranking tables, not a single report to explore")
	}

	// In JSON mode stdout carries exactly one machine-readable document, so
	// the human-oriented text around it is dropped.
	textW := w
	if o.findDivergence && o.jsonOut {
		textW = io.Discard
	}

	rdOpts := trace.ReadOptions{Obs: obsRun}
	if o.lenient {
		rdOpts.Mode = trace.Lenient
	}
	// Both runs must share one registry so function IDs align.
	reg := trace.NewRegistry()
	var (
		normal, faulty   *trace.TraceSet
		snormal, sfaulty *parlot.StreamSet
		nrep, frep       *resilience.IngestReport
		err              error
	)
	spIngest := obsRun.StartSpan("ingest")
	if o.stream {
		snormal, nrep, err = readStreamSet(ctx, o.normalPath, reg, rdOpts)
	} else {
		normal, nrep, err = readSet(ctx, o.normalPath, reg, rdOpts)
	}
	if err != nil {
		// A timed-out (or corrupt) read still surfaces how far it got.
		writeIngest(w, o, nrep)
		return err
	}
	if o.stream {
		sfaulty, frep, err = readStreamSet(ctx, o.faultyPath, reg, rdOpts)
	} else {
		faulty, frep, err = readSet(ctx, o.faultyPath, reg, rdOpts)
	}
	if err != nil {
		writeIngest(w, o, nrep, frep)
		return err
	}
	spIngest.End()
	obsRun.AddIngest(ingestTotals(nrep))
	obsRun.AddIngest(ingestTotals(frep))
	if o.stream {
		// StreamSet renders the same "TraceSet{...}" header, so the two
		// modes stay line-for-line comparable.
		fmt.Fprintf(textW, "normal: %s   faulty: %s\n", snormal, sfaulty)
	} else {
		fmt.Fprintf(textW, "normal: %s   faulty: %s\n", normal, faulty)
	}
	writeIngest(textW, o, nrep, frep)

	linkage, err := cluster.ParseMethod(o.linkageName)
	if err != nil {
		return err
	}
	customs := splitList(o.custom)

	if o.sweep != "" {
		tbl, err := rank.SweepContext(ctx, normal, faulty, rank.Request{
			Specs:          splitList(o.sweep),
			CustomPatterns: customs,
			Linkage:        linkage,
			TopK:           o.top,
			Workers:        o.workers,
			Obs:            obsRun,
		})
		if err != nil {
			return err
		}
		fmt.Fprint(w, tbl.Render())
		return nil
	}

	flt, err := filter.ParseSpec(o.filterSpec, customs...)
	if err != nil {
		return err
	}
	ac, err := attr.ParseConfig(o.attrSpec)
	if err != nil {
		return err
	}
	cfg := core.Config{
		Filter: flt, Attr: ac, Linkage: linkage, BuildLattices: o.lattice,
		Resilient: o.lenient, Workers: o.workers, Obs: obsRun,
	}
	var rep *core.Report
	if o.stream {
		rep, err = core.DiffRunStreamContext(ctx, snormal, sfaulty, cfg)
	} else {
		rep, err = core.DiffRunContext(ctx, normal, faulty, cfg)
	}
	if err != nil {
		return err
	}
	for _, e := range rep.Degraded {
		fmt.Fprintf(textW, "degraded: %s\n", e)
	}

	// The divergence pass runs off the finished report, so it composes
	// with both ingest modes (and with -report below).
	var div *core.DivergenceReport
	if o.findDivergence {
		div, err = rep.FindDivergenceContext(ctx)
		if err != nil {
			return err
		}
		if o.jsonOut {
			return div.WriteJSON(w)
		}
	}

	if o.report {
		if err := rep.WriteReport(w, core.RenderOptions{
			TopK:     o.top,
			Heatmaps: o.heatmap,
			Lattices: o.lattice,
			Color:    o.color,
		}); err != nil {
			return err
		}
		if o.triage {
			writeTriage(w, flt, normal, faulty)
		}
		if div != nil {
			fmt.Fprintln(w)
			if err := div.Render(w); err != nil {
				return err
			}
		}
		return nil
	}

	fmt.Fprintf(w, "filter=%s attrs=%s linkage=%s\n", flt, ac, linkage)
	fmt.Fprintf(w, "B-score (threads):   %.3f\n", rep.Threads.BScore)
	fmt.Fprintf(w, "B-score (processes): %.3f\n", rep.Processes.BScore)
	fmt.Fprintf(w, "top thread suspects:  %s\n", strings.Join(rep.Threads.TopSuspects(o.top, 1e-9), ", "))
	fmt.Fprintf(w, "top process suspects: %s\n", strings.Join(rep.Processes.TopSuspects(o.top, 1e-9), ", "))

	if o.heatmap {
		fmt.Fprintln(w, "\nJSM_D heatmap (threads):")
		fmt.Fprint(w, rep.Threads.JSMD.Heatmap())
	}
	if o.lattice && rep.Threads.Faulty.Lattice != nil {
		fmt.Fprintln(w, "\nconcept lattice (faulty run, threads):")
		fmt.Fprint(w, rep.Threads.Faulty.Lattice.Render())
	}
	if o.diffTarget != "" {
		level := rep.Threads
		if !strings.Contains(o.diffTarget, ".") {
			level = rep.Processes
		}
		d, err := rep.DiffNLR(level, o.diffTarget)
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, d.Render(o.color))
	}
	if div != nil {
		fmt.Fprintln(w)
		if err := div.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// writeIngest prints the degradation summary: always with -ingest-report,
// and automatically whenever a lenient read had to salvage anything.
func writeIngest(w io.Writer, o options, reps ...*resilience.IngestReport) {
	for _, rep := range reps {
		if rep == nil || (!o.ingestReport && rep.Clean()) {
			continue
		}
		// Summary/RenderTable already lead with the source path.
		if rep.Clean() {
			fmt.Fprintf(w, "ingest %s\n", rep.Summary())
		} else {
			fmt.Fprint(w, "ingest "+rep.RenderTable())
		}
	}
}

// ingestTotals folds an IngestReport into the manifest's ingestion entry.
// obs stays dependency-free, so the conversion lives with the CLI — the one
// place that holds both ends.
func ingestTotals(rep *resilience.IngestReport) obs.Ingest {
	if rep == nil {
		return obs.Ingest{}
	}
	return obs.Ingest{
		Source:            rep.Source,
		Lenient:           rep.Lenient,
		EventsKept:        rep.EventsKept,
		EventsDropped:     rep.EventsDropped,
		EventsSynthesized: rep.EventsSynthesized,
		TracesAffected:    len(rep.Records()),
		Quarantined:       rep.Quarantined(),
	}
}

// writeManifest serializes the run manifest to path.
func writeManifest(path string, r *obs.Run) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Manifest().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTriage appends the companion analyses (§VI's related-work views) to
// the report: STAT stack classes of the faulty run, AutomaDeD single-run
// outliers, and the relative progress ranking.
func writeTriage(w io.Writer, flt *filter.Filter, normal, faulty *trace.TraceSet) {
	fmt.Fprintln(w, "== companion analyses ==")
	fmt.Fprintln(w, "STAT stack classes (faulty run):")
	fmt.Fprint(w, stat.Build(faulty).Render())
	fn := flt.ApplySet(normal)
	ff := flt.ApplySet(faulty)
	fmt.Fprintln(w, "\nAutomaDeD single-run outliers:")
	fmt.Fprint(w, automaded.Analyze(ff).Render())
	fmt.Fprintln(w, "")
	fmt.Fprint(w, progress.Analyze(fn, ff, flt.K).Render())
}

// readSet loads a trace file in either format, sniffing the binary magic.
// Strict errors are prefixed with the path; the IngestReport records what a
// lenient read salvaged.
func readSet(ctx context.Context, path string, reg *trace.Registry, opts trace.ReadOptions) (*trace.TraceSet, *resilience.IngestReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var (
		s   *trace.TraceSet
		rep *resilience.IngestReport
	)
	magic, err := br.Peek(5)
	if err == nil && string(magic) == "PLOT1" {
		s, rep, err = parlot.ReadSetBinaryContext(ctx, br, reg, opts)
	} else {
		s, rep, err = trace.ReadSetTextContext(ctx, br, reg, opts)
	}
	if rep != nil {
		// Even a partial (timed-out/corrupt) report names its source.
		rep.Source = path
	}
	if err != nil {
		return nil, rep, fmt.Errorf("%s: %w", path, err)
	}
	return s, rep, nil
}

// readStreamSet loads a PLOT1 file as a compressed StreamSet for -stream.
// The text format has no compressed representation to stream, so anything
// without the binary magic is rejected up front.
func readStreamSet(ctx context.Context, path string, reg *trace.Registry, opts trace.ReadOptions) (*parlot.StreamSet, *resilience.IngestReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic, err := br.Peek(5)
	if err != nil || string(magic) != "PLOT1" {
		return nil, nil, fmt.Errorf("%s: -stream needs the PLOT1 binary format (re-emit with tracegen's binary output)", path)
	}
	s, rep, err := parlot.ReadStreamSetContext(ctx, br, reg, opts)
	if rep != nil {
		rep.Source = path
	}
	if err != nil {
		return nil, rep, fmt.Errorf("%s: %w", path, err)
	}
	return s, rep, nil
}
