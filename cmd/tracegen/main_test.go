package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

func TestRunOddEvenWritesTraces(t *testing.T) {
	out := filepath.Join(t.TempDir(), "normal.trace")
	if err := run("oddeven", "none", out, "text", 4, 4, 5); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	set, err := trace.ReadSetText(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Traces) != 4 {
		t.Errorf("traces = %d", len(set.Traces))
	}
	if set.TotalEvents() == 0 {
		t.Error("no events written")
	}
}

func TestRunWithFault(t *testing.T) {
	out := filepath.Join(t.TempDir(), "faulty.trace")
	if err := run("oddeven", "dlBug", out, "text", 16, 4, 5); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "truncated") {
		t.Error("deadlocked traces should carry truncation markers")
	}
}

func TestRunILCSAndLULESH(t *testing.T) {
	dir := t.TempDir()
	if err := run("ilcs", "none", filepath.Join(dir, "i.trace"), "text", 4, 2, 7); err != nil {
		t.Fatal(err)
	}
	if err := run("lulesh", "none", filepath.Join(dir, "l.trace"), "text", 4, 2, 7); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"i.trace", "l.trace"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil || fi.Size() == 0 {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunBinaryFormat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "normal.plot")
	if err := run("oddeven", "none", out, "binary", 8, 4, 5); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	set, err := parlot.ReadSetBinary(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Traces) != 8 || set.TotalEvents() == 0 {
		t.Errorf("binary set: %d traces, %d events", len(set.Traces), set.TotalEvents())
	}
	if err := run("oddeven", "none", out, "bogus", 8, 4, 5); err == nil {
		t.Error("bad format accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", "none", "", "text", 4, 4, 5); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run("oddeven", "bogusFault", "", "text", 4, 4, 5); err == nil {
		t.Error("unknown fault accepted")
	}
	if err := run("oddeven", "none", "/nonexistent-dir/x.trace", "text", 4, 4, 5); err == nil {
		t.Error("unwritable output accepted")
	}
}
