// Command tracegen runs one of the paper's applications under the ParLOT
// tracing substrate and writes the per-thread traces to a text file that
// cmd/difftrace consumes.
//
// Usage:
//
//	tracegen -app oddeven -procs 16 -o normal.trace
//	tracegen -app oddeven -procs 16 -fault swapBug -o faulty.trace
//	tracegen -app ilcs -fault ompBug -o ilcs-faulty.trace
//	tracegen -app lulesh -fault skipLeapFrog -o lulesh-faulty.trace
//	tracegen -app lulesh -format binary -o lulesh.plot   # compressed
//
// The normal and faulty traces of one comparison should be generated with
// the same -seed so the executions differ only by the fault.
package main

import (
	"flag"
	"fmt"
	"os"

	"difftrace/internal/apps/ilcs"
	"difftrace/internal/apps/lulesh"
	"difftrace/internal/apps/oddeven"
	"difftrace/internal/faults"
	"difftrace/internal/parlot"
	"difftrace/internal/trace"
)

func main() {
	app := flag.String("app", "oddeven", "application: oddeven | ilcs | lulesh")
	fault := flag.String("fault", "none", "fault plan: none | swapBug | dlBug | ompBug | wrongSize | wrongOp | skipLeapFrog")
	out := flag.String("o", "", "output trace file (default stdout)")
	procs := flag.Int("procs", 0, "MPI processes (default: app-specific paper setting)")
	workers := flag.Int("workers", 4, "ILCS worker threads / LULESH OMP threads per process")
	seed := flag.Int64("seed", 5, "workload seed")
	format := flag.String("format", "text", "output format: text | binary (compressed ParLOT file)")
	flag.Parse()

	if err := run(*app, *fault, *out, *format, *procs, *workers, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(app, fault, out, format string, procs, workers int, seed int64) error {
	if format != "text" && format != "binary" {
		return fmt.Errorf("unknown format %q", format)
	}
	plan, err := faults.Named(fault)
	if err != nil {
		return err
	}
	tracer := parlot.NewTracer(parlot.MainImage)

	var deadlocked bool
	switch app {
	case "oddeven":
		if procs == 0 {
			procs = 16
		}
		res, err := oddeven.Run(oddeven.Config{Procs: procs, Seed: seed, Plan: plan, Tracer: tracer})
		if err != nil {
			return err
		}
		deadlocked = res.Deadlocked
	case "ilcs":
		if procs == 0 {
			procs = 8
		}
		res, err := ilcs.Run(ilcs.Config{
			Procs: procs, Workers: workers, Cities: 12, Seed: seed,
			StableRounds: 2, MaxRounds: 10, Plan: plan, Tracer: tracer,
		})
		if err != nil {
			return err
		}
		deadlocked = res.Deadlocked
	case "lulesh":
		if procs == 0 {
			procs = 8
		}
		res, err := lulesh.Run(lulesh.Config{
			Procs: procs, Threads: workers, EdgeElems: 6, Regions: 11,
			Cycles: 2, Plan: plan, Tracer: tracer,
		})
		if err != nil {
			return err
		}
		deadlocked = res.Deadlocked
	default:
		return fmt.Errorf("unknown app %q", app)
	}

	set := tracer.Collect()
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if format == "binary" {
		if err := parlot.WriteSetBinary(w, set); err != nil {
			return err
		}
	} else if err := trace.WriteSetText(w, set); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracegen: %s/%s -> %d traces, %d events (deadlocked=%v, compressed=%d bytes)\n",
		app, fault, len(set.Traces), set.TotalEvents(), deadlocked, tracer.CompressedBytes())
	return nil
}
