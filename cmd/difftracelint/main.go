// difftracelint runs the project-invariant static analyzer over every
// package in the module and reports violations of the determinism, panic,
// and concurrency discipline the DiffTrace pipeline depends on.
//
//	go run ./cmd/difftracelint ./...          # text diagnostics, exit 1 on findings
//	go run ./cmd/difftracelint -json ./...    # machine-readable JSON array
//	go run ./cmd/difftracelint -why ./...     # text plus interprocedural call chains
//	go run ./cmd/difftracelint -graph         # dump the module call graph and exit
//	go run ./cmd/difftracelint -list          # registered checks and their invariants
//	go run ./cmd/difftracelint -checks maprange,errwrap ./...
//
// The package pattern argument is accepted for familiarity but the tool
// always analyzes the whole module: the invariants are module-wide (a naked
// goroutine is a violation wherever it hides), and whole-module loading is
// what lets the config table express "only internal/pool may do X".
//
// -workers bounds both the type-checking and the per-package check fan-out
// (0 = GOMAXPROCS); any worker count yields identical output. -summary-cache
// persists the interprocedural summary layer between runs, keyed on each
// package's source hash.
//
// Exit codes: 0 clean, 1 unsuppressed diagnostics, 2 load/usage error.
// Suppress a single finding with `//lint:allow check-name reason` on the
// offending line or the line above; suppress a package subtree by editing
// the table in internal/lint/config.go. See DESIGN.md §9 and §14.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"difftrace/internal/lint"
	"difftrace/internal/lint/callgraph"
	"difftrace/internal/lint/checks"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("difftracelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of file:line text")
	why := fs.Bool("why", false, "follow each interprocedural finding with the call chain that makes it reachable")
	graph := fs.Bool("graph", false, "dump the module call graph (one 'caller -> callee' line per edge) and exit")
	sel := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list registered checks and exit")
	dir := fs.String("C", ".", "directory whose enclosing module is analyzed")
	workers := fs.Int("workers", 0, "parallel type-check/check workers (0 = GOMAXPROCS)")
	cacheDir := fs.String("summary-cache", "", "directory persisting per-package interprocedural summaries across runs")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	active := checks.All()
	if *sel != "" {
		var err error
		active, err = checks.ByName(strings.Split(*sel, ","))
		if err != nil {
			fmt.Fprintln(stderr, "difftracelint:", err)
			return 2
		}
	}
	if *list {
		for _, c := range active {
			fmt.Fprintf(stdout, "%-16s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "difftracelint:", err)
		return 2
	}
	pkgs, err := loader.LoadModuleWorkers(*workers)
	if err != nil {
		fmt.Fprintln(stderr, "difftracelint:", err)
		return 2
	}

	if *graph {
		if err := callgraph.Build(pkgs).Dump(stdout); err != nil {
			fmt.Fprintln(stderr, "difftracelint:", err)
			return 2
		}
		return 0
	}

	runner := lint.NewRunner(active, lint.ProjectConfig(), loader.ModRoot)
	runner.Workers = *workers
	runner.CacheDir = *cacheDir
	diags := runner.Run(pkgs)

	write := lint.WriteText
	if *why {
		write = lint.WriteTextWhy
	}
	if *jsonOut {
		write = lint.WriteJSON
	}
	if err := write(stdout, diags); err != nil {
		fmt.Fprintln(stderr, "difftracelint:", err)
		return 2
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "difftracelint: %d finding(s) across %d package(s), %d check(s)\n",
			len(diags), len(pkgs), len(active))
		return 1
	}
	return 0
}
