// difftracelint runs the project-invariant static analyzer over every
// package in the module and reports violations of the determinism, panic,
// and concurrency discipline the DiffTrace pipeline depends on.
//
//	go run ./cmd/difftracelint ./...          # text diagnostics, exit 1 on findings
//	go run ./cmd/difftracelint -json ./...    # machine-readable JSON array
//	go run ./cmd/difftracelint -list          # registered checks and their invariants
//	go run ./cmd/difftracelint -checks maprange,errwrap ./...
//
// The package pattern argument is accepted for familiarity but the tool
// always analyzes the whole module: the invariants are module-wide (a naked
// goroutine is a violation wherever it hides), and whole-module loading is
// what lets the config table express "only internal/pool may do X".
//
// Exit codes: 0 clean, 1 unsuppressed diagnostics, 2 load/usage error.
// Suppress a single finding with `//lint:allow check-name reason` on the
// offending line or the line above; suppress a package subtree by editing
// the table in internal/lint/config.go. See DESIGN.md §9.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"difftrace/internal/lint"
	"difftrace/internal/lint/checks"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("difftracelint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of file:line text")
	sel := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list registered checks and exit")
	dir := fs.String("C", ".", "directory whose enclosing module is analyzed")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	active := checks.All()
	if *sel != "" {
		var err error
		active, err = checks.ByName(strings.Split(*sel, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "difftracelint:", err)
			return 2
		}
	}
	if *list {
		for _, c := range active {
			fmt.Printf("%-16s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "difftracelint:", err)
		return 2
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "difftracelint:", err)
		return 2
	}

	runner := lint.NewRunner(active, lint.ProjectConfig(), loader.ModRoot)
	diags := runner.Run(pkgs)

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "difftracelint:", err)
			return 2
		}
	} else if err := lint.WriteText(os.Stdout, diags); err != nil {
		fmt.Fprintln(os.Stderr, "difftracelint:", err)
		return 2
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "difftracelint: %d finding(s) across %d package(s), %d check(s)\n",
			len(diags), len(pkgs), len(active))
		return 1
	}
	return 0
}
