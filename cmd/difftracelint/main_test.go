package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func fixture(name string) string {
	return filepath.Join("..", "..", "internal", "lint", "testdata", "src", name)
}

// runLint drives the CLI exactly as main does, against a fixture module.
func runLint(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestWhyPrintsChains is the acceptance gate for -why: the interprocedural
// checks must explain their findings with the call chain from an exported
// entry point, not just a position.
func TestWhyPrintsChains(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks fixture modules from source; run without -short")
	}
	cases := []struct {
		check   string
		fixture string
		// a function that only appears in the finding via its call chain
		chainHop string
	}{
		{"orderflow", "orderflow", "Summary"},
		{"lockdiscipline", "lockdiscipline", "Peek"},
	}
	for _, tc := range cases {
		t.Run(tc.check, func(t *testing.T) {
			code, out, stderr := runLint(t, "-C", fixture(tc.fixture), "-checks", tc.check, "-why")
			if code != 1 {
				t.Fatalf("exit %d, want 1 (findings expected)\nstdout:\n%s\nstderr:\n%s", code, out, stderr)
			}
			if !strings.Contains(out, "why:") {
				t.Fatalf("-why output has no call chains:\n%s", out)
			}
			if !strings.Contains(out, tc.chainHop) {
				t.Fatalf("-why chain does not pass through %s:\n%s", tc.chainHop, out)
			}
			if !strings.Contains(out, "→") {
				t.Fatalf("-why chain is a single hop — want caller → callee arrows:\n%s", out)
			}
		})
	}
}

// TestGraphDump: -graph emits a deterministic edge list and exits 0 even
// when the module has findings.
func TestGraphDump(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks fixture modules from source; run without -short")
	}
	code, out, stderr := runLint(t, "-C", fixture("lockdiscipline"), "-graph")
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(out, "->") {
		t.Fatalf("-graph output has no edges:\n%s", out)
	}
	code2, out2, _ := runLint(t, "-C", fixture("lockdiscipline"), "-graph")
	if code2 != 0 || out != out2 {
		t.Fatal("-graph output is not deterministic across runs")
	}
}

// TestSummaryCacheRuns: a second run against a warm -summary-cache produces
// byte-identical diagnostics.
func TestSummaryCacheRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks fixture modules from source; run without -short")
	}
	cache := t.TempDir()
	code1, out1, _ := runLint(t, "-C", fixture("orderflow"), "-checks", "orderflow", "-summary-cache", cache)
	code2, out2, _ := runLint(t, "-C", fixture("orderflow"), "-checks", "orderflow", "-summary-cache", cache)
	if code1 != code2 || out1 != out2 {
		t.Fatalf("cached run diverged: exit %d vs %d\n--- cold ---\n%s--- warm ---\n%s", code1, code2, out1, out2)
	}
	if code1 != 1 {
		t.Fatalf("exit %d, want 1 (fixture has findings)", code1)
	}
}
