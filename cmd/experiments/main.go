// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run tableVI
//	experiments -run all [-quiet]
//
// Each experiment prints the reproduced artifact (table rows, lattice,
// diffNLR, ...) followed by a PASS/FAIL shape check and the measured
// metrics that EXPERIMENTS.md records.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"difftrace/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	runID := flag.String("run", "all", "experiment ID to run, or 'all'")
	quiet := flag.Bool("quiet", false, "suppress artifact output, print outcomes only")
	flag.Parse()

	code := run(os.Stdout, os.Stderr, *list, *runID, *quiet)
	if code != 0 {
		os.Exit(code)
	}
}

// run drives the harness; returns the process exit code.
func run(stdout, stderr io.Writer, list bool, runID string, quiet bool) int {
	if list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-14s %-28s %s\n", e.ID, e.PaperRef, e.Title)
		}
		return 0
	}

	var todo []experiments.Experiment
	if runID == "all" {
		todo = experiments.All()
	} else {
		e, ok := experiments.Get(runID)
		if !ok {
			fmt.Fprintf(stderr, "unknown experiment %q; try -list\n", runID)
			return 2
		}
		todo = []experiments.Experiment{e}
	}

	failed := 0
	for _, e := range todo {
		fmt.Fprintf(stdout, "=== %s — %s ===\n", e.ID, e.PaperRef)
		var w io.Writer = stdout
		if quiet {
			w = io.Discard
		}
		out, err := e.Run(w)
		if err != nil {
			fmt.Fprintf(stdout, "ERROR: %v\n\n", err)
			failed++
			continue
		}
		fmt.Fprintf(stdout, "%s\n\n", out.Summary())
		if !out.Pass {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "%d experiment(s) failed shape checks\n", failed)
		return 1
	}
	return 0
}
