package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(&out, &errb, true, "all", false); code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, want := range []string{"tableII", "fig5", "classify-bugs", "baselines"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(&out, &errb, false, "bogus", true); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(&out, &errb, false, "tableIV", false); code != 0 {
		t.Fatalf("exit code %d (stderr %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "PASS") || !strings.Contains(out.String(), "Table IV") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunQuietSuppressesArtifacts(t *testing.T) {
	var loud, quiet, errb bytes.Buffer
	if code := run(&loud, &errb, false, "tableII", false); code != 0 {
		t.Fatal("loud run failed")
	}
	if code := run(&quiet, &errb, false, "tableII", true); code != 0 {
		t.Fatal("quiet run failed")
	}
	if quiet.Len() >= loud.Len() {
		t.Errorf("quiet output (%d bytes) not smaller than loud (%d)", quiet.Len(), loud.Len())
	}
}
