// Command difftraced is the DiffTrace analysis service: a long-running
// daemon that accepts trace-pair diff jobs over HTTP, runs them through
// the pipeline with bounded concurrency, and persists every artifact in a
// crash-safe content-addressed store.
//
//	difftraced -addr 127.0.0.1:8321 -store /var/lib/difftraced
//
// Endpoints:
//
//	POST /v1/diff      {"normal": "...", "faulty": "...", ...} → job
//	GET  /v1/jobs/{id} job status; running jobs show live progress,
//	                   done jobs embed report + manifest
//	GET  /healthz      200 ok / 503 draining (queue depth in the body)
//	GET  /metrics      Prometheus text exposition (?format=json|summary)
//	GET  /debug/flight last N completed jobs (the flight recorder)
//
// Operational output is structured: every log line is one JSON object on
// stderr, carrying the job's trace ID where one applies. The single
// readiness line on stdout stays plain text — orchestrators parse it.
//
// SIGTERM/SIGINT trigger graceful shutdown: admission stops (503), jobs
// in flight drain under -drain-timeout, stragglers are cancelled, the
// flight recorder dumps to the store, and the queued backlog persists to
// <store>/queue.json for the next boot.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"difftrace/internal/obs"
	"difftrace/internal/obs/olog"
	"difftrace/internal/obs/telemetry"
	"difftrace/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8321", "listen address")
	storeDir := flag.String("store", "difftraced-store", "artifact store directory")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "per-job pipeline worker budget (results do not depend on this)")
	streaming := flag.Bool("streaming", false, "run PLOT1 jobs through the streaming pipeline by default (same reports, bounded memory)")
	concurrency := flag.Int("concurrency", service.DefaultConcurrency, "jobs run at once")
	queueDepth := flag.Int("queue", service.DefaultQueueDepth, "bounded admission queue depth (full → 429)")
	maxAttempts := flag.Int("max-attempts", service.DefaultMaxAttempts, "tries per job, counting the first")
	jobTimeout := flag.Duration("job-timeout", service.DefaultJobTimeout, "per-attempt job deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain deadline for in-flight jobs")
	holdJob := flag.Duration("hold-job", 0, "fault injection: hold every job this long before analysis (e2e tests land signals mid-job with it)")
	logLevel := flag.String("log-level", "info", "minimum structured-log level: debug, info, warn, error")
	flightSize := flag.Int("flight-size", telemetry.DefaultFlightSize, "flight recorder ring size (last N completed jobs)")
	flag.Parse()

	lvl, ok := olog.ParseLevel(*logLevel)
	if !ok {
		fmt.Fprintf(os.Stderr, "difftraced: unknown -log-level %q\n", *logLevel)
		os.Exit(2)
	}
	logger := olog.New(os.Stderr, lvl).With(olog.Str("component", "difftraced"))

	if err := run(*addr, *storeDir, *workers, *streaming, *concurrency, *queueDepth, *maxAttempts, *jobTimeout, *drainTimeout, *holdJob, *flightSize, logger); err != nil {
		logger.Error("fatal", olog.Err(err))
		os.Exit(1)
	}
}

func run(addr, storeDir string, workers int, streaming bool, concurrency, queueDepth, maxAttempts int, jobTimeout, drainTimeout, holdJob time.Duration, flightSize int, logger *olog.Logger) error {
	// The service outlives any single request: its job context is the
	// process context, cancelled only by shutdown.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	obsRun := obs.NewRun("difftraced")
	svc, recovery, err := service.New(context.Background(), service.Config{
		StoreDir:    storeDir,
		Workers:     workers,
		Streaming:   streaming,
		Concurrency: concurrency,
		QueueDepth:  queueDepth,
		MaxAttempts: maxAttempts,
		JobTimeout:  jobTimeout,
		Obs:         obsRun,
		Log:         logger,
		FlightSize:  flightSize,
		Hooks:       service.Hooks{HoldJob: holdJob},
	})
	if err != nil {
		return err
	}
	if !recovery.Clean() {
		logger.Warn("store recovery was not clean", olog.Str("summary", recovery.Summary()))
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler()}
	errCh := make(chan error, 1)
	//lint:allow nakedgoroutine http.Serve is joined via errCh below; it returns when srv.Shutdown closes the listener
	go func() { errCh <- srv.Serve(ln) }()
	// Readiness line on stdout: tests and orchestrators parse the bound
	// address (the port may have been chosen by the kernel via :0).
	fmt.Printf("difftraced: listening on %s (store %s)\n", ln.Addr(), storeDir)
	logger.Info("listening", olog.Str("addr", ln.Addr().String()), olog.Str("store", storeDir))

	<-ctx.Done()
	logger.Info("shutdown signal received; draining", olog.Int64("drain_timeout_ms", drainTimeout.Milliseconds()))

	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	persisted, stopErr := svc.Stop(drainCtx)
	if stopErr != nil {
		logger.Error("drain failed", olog.Err(stopErr))
	}
	if persisted > 0 {
		logger.Info("unfinished jobs persisted to queue.json", olog.Int("jobs", persisted))
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil {
		srv.Close()
	}
	if serveErr := <-errCh; serveErr != nil && serveErr != http.ErrServerClosed {
		return serveErr
	}
	logger.Info("exit clean")
	return stopErr
}
