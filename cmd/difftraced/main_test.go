package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"difftrace/internal/obs/telemetry"
)

// The e2e tests re-exec this test binary as the daemon: TestMain
// dispatches to main() when the marker env var is set, so the chaos
// suite can SIGTERM and restart a real difftraced process without a
// separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("DIFFTRACED_E2E_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// logBuf is a race-safe stderr capture: exec's copier goroutine writes
// into it while a live daemon runs, and the telemetry e2e reads it back
// before the process exits.
type logBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *logBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// daemon is one spawned difftraced process under test.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://host:port
	out  *logBuf
}

// startDaemon boots a difftraced on an ephemeral port and waits for its
// readiness line.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	full := append([]string{"-addr", "127.0.0.1:0"}, args...)
	cmd := exec.Command(exe, full...)
	cmd.Env = append(os.Environ(), "DIFFTRACED_E2E_MAIN=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	errBuf := &logBuf{}
	cmd.Stderr = errBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, out: errBuf}
	ready := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "difftraced: listening on "); ok {
				addr, _, _ := strings.Cut(rest, " ")
				ready <- addr
			}
		}
	}()
	select {
	case addr := <-ready:
		d.base = "http://" + addr
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon never became ready; stderr:\n%s", errBuf.String())
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait() //nolint:errcheck
		}
	})
	return d
}

// sigterm delivers SIGTERM and waits for a clean exit.
func (d *daemon) sigterm(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly: %v\nstderr:\n%s", err, d.out.String())
		}
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		t.Fatalf("daemon ignored SIGTERM\nstderr:\n%s", d.out.String())
	}
}

type jobResp struct {
	ID       string          `json:"id"`
	TraceID  string          `json:"trace_id"`
	State    string          `json:"state"`
	Cached   bool            `json:"cached"`
	Error    string          `json:"error"`
	Report   string          `json:"report"`
	Manifest json.RawMessage `json:"manifest"`
	Progress *struct {
		Stage         string  `json:"stage"`
		Events        int64   `json:"events"`
		EventsPerSec  float64 `json:"events_per_sec"`
		RunMs         int64   `json:"run_ms"`
		PeakHeapBytes uint64  `json:"peak_heap_bytes"`
	} `json:"progress"`
}

func (d *daemon) postDiff(t *testing.T, normal, faulty string) (int, jobResp) {
	t.Helper()
	body := fmt.Sprintf(`{"normal": %q, "faulty": %q}`, normal, faulty)
	resp, err := http.Post(d.base+"/v1/diff", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr jobResp
	json.NewDecoder(resp.Body).Decode(&jr) //nolint:errcheck // non-2xx bodies are error JSON
	return resp.StatusCode, jr
}

func (d *daemon) getJob(t *testing.T, id string) (int, jobResp) {
	t.Helper()
	resp, err := http.Get(d.base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr jobResp
	json.NewDecoder(resp.Body).Decode(&jr) //nolint:errcheck
	return resp.StatusCode, jr
}

func (d *daemon) waitDone(t *testing.T, id string) jobResp {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, jr := d.getJob(t, id)
		if code == http.StatusOK && (jr.State == "done" || jr.State == "failed") {
			return jr
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never settled (last: %d %+v)\ndaemon stderr:\n%s", id, code, jr, d.out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func fixturePaths(t *testing.T) (string, string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", "testdata", "fca"))
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(root, "ilcs_normal.trace"), filepath.Join(root, "ilcs_faulty.trace")
}

// TestDaemonSigtermMidJobRecoversOnRestart is the service chaos gate:
// boot difftraced, submit the fixture pair, SIGTERM it mid-job (the job
// is held by fault injection so the signal deterministically lands while
// it runs), restart on the same store, and assert the job recovers and
// completes — with the second submission a cache hit whose report is
// byte-identical to a cold Workers:1 run.
func TestDaemonSigtermMidJobRecoversOnRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e")
	}
	normal, faulty := fixturePaths(t)
	storeDir := t.TempDir()

	// Boot A: every job held 30s, drain deadline 300ms — SIGTERM lands
	// mid-job and cannot be outwaited.
	a := startDaemon(t, "-store", storeDir, "-hold-job", "30s", "-drain-timeout", "300ms")
	code, jr := a.postDiff(t, normal, faulty)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d, want 202", code)
	}
	jobID := jr.ID
	// Wait until the job is claimed (running) so the SIGTERM is genuinely
	// mid-job, not pre-claim.
	claimDeadline := time.Now().Add(10 * time.Second)
	for {
		_, cur := a.getJob(t, jobID)
		if cur.State == "running" {
			break
		}
		if time.Now().After(claimDeadline) {
			t.Fatalf("job never claimed: %+v", cur)
		}
		time.Sleep(10 * time.Millisecond)
	}
	a.sigterm(t)
	logOut := a.out.String()
	if !strings.Contains(logOut, `"msg":"unfinished jobs persisted to queue.json"`) || !strings.Contains(logOut, `"jobs":1`) {
		t.Fatalf("daemon did not persist the interrupted job; stderr:\n%s", logOut)
	}
	if _, err := os.Stat(filepath.Join(storeDir, "queue.json")); err != nil {
		t.Fatalf("queue.json missing after SIGTERM: %v", err)
	}

	// Boot B on the same store, no hold: the persisted job restores and
	// completes.
	b := startDaemon(t, "-store", storeDir)
	done := b.waitDone(t, jobID)
	if done.State != "done" {
		t.Fatalf("recovered job failed: %s", done.Error)
	}
	if !strings.Contains(done.Report, "DiffTrace report") {
		t.Fatalf("recovered job has no report:\n%.400s", done.Report)
	}
	if _, err := os.Stat(filepath.Join(storeDir, "queue.json")); !os.IsNotExist(err) {
		t.Fatalf("queue.json not consumed after recovery: %v", err)
	}

	// Resubmission: cache hit (200, cached, no recompute), identical bytes.
	code2, jr2 := b.postDiff(t, normal, faulty)
	if code2 != http.StatusOK || !jr2.Cached {
		t.Fatalf("resubmission = %d cached=%v, want 200 cached", code2, jr2.Cached)
	}
	if jr2.Report != done.Report || !bytes.Equal(jr2.Manifest, done.Manifest) {
		t.Fatal("cached artifacts differ from the recovered run's")
	}
	b.sigterm(t)

	// Cold Workers:1 reference on a fresh store: the recovered (parallel,
	// crash-interrupted, cache-served) report must match it byte for byte.
	c := startDaemon(t, "-store", t.TempDir(), "-workers", "1")
	code3, jr3 := c.postDiff(t, normal, faulty)
	if code3 != http.StatusAccepted {
		t.Fatalf("cold POST = %d", code3)
	}
	cold := c.waitDone(t, jr3.ID)
	if cold.State != "done" {
		t.Fatalf("cold run failed: %s", cold.Error)
	}
	if cold.Report != done.Report {
		t.Error("recovered report differs from cold Workers:1 report")
	}
	if !bytes.Equal(cold.Manifest, done.Manifest) {
		t.Error("recovered manifest differs from cold Workers:1 manifest")
	}
	c.sigterm(t)
}

// TestDaemonTelemetryE2E is the observability acceptance gate, run against
// a real re-exec'd difftraced: submit a job, watch its live progress and
// trace ID through GET /v1/jobs/{id} while it runs, scrape /metrics
// mid-run and validate the exposition, find the job in /debug/flight after
// it completes, grep its trace ID out of the daemon's JSON log stream, and
// finally confirm the SIGTERM drain dumps the flight ring to the store.
func TestDaemonTelemetryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e")
	}
	normal, faulty := fixturePaths(t)
	storeDir := t.TempDir()
	// The hold keeps the job observably mid-run long enough for the live
	// progress poll and the mid-run scrape.
	d := startDaemon(t, "-store", storeDir, "-hold-job", "2s", "-log-level", "debug")

	code, jr := d.postDiff(t, normal, faulty)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d, want 202", code)
	}
	if jr.TraceID == "" {
		t.Fatal("admitted job has no trace ID")
	}
	tid := jr.TraceID

	// Live view: poll until the job is running, then assert the telemetry
	// surface a mid-run GET exposes.
	var live jobResp
	claimDeadline := time.Now().Add(10 * time.Second)
	for {
		_, live = d.getJob(t, jr.ID)
		if live.State == "running" {
			break
		}
		if time.Now().After(claimDeadline) {
			t.Fatalf("job never claimed: %+v", live)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if live.TraceID != tid {
		t.Fatalf("running view trace ID %q != admitted %q", live.TraceID, tid)
	}
	if live.Progress == nil {
		t.Fatal("running job view has no progress")
	}
	if live.Progress.RunMs < 0 {
		t.Fatalf("running progress: %+v", live.Progress)
	}

	// Mid-run scrape: the default /metrics format must be clean Prometheus
	// exposition text and reflect the in-flight job.
	resp, err := http.Get(d.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	promBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d, %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if err := telemetry.ValidateText(bytes.NewReader(promBody)); err != nil {
		t.Fatalf("mid-run /metrics fails exposition validation: %v\n%s", err, promBody)
	}
	for _, want := range []string{
		"difftrace_service_admitted_total 1",
		"difftrace_service_jobs_running 1",
	} {
		if !strings.Contains(string(promBody), want) {
			t.Errorf("mid-run /metrics missing %q:\n%s", want, promBody)
		}
	}

	done := d.waitDone(t, jr.ID)
	if done.State != "done" {
		t.Fatalf("job failed: %s", done.Error)
	}

	// Flight recorder: the completed job is in the ring with its trace ID
	// and final counters.
	fresp, err := http.Get(d.base + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	var flight struct {
		Records []struct {
			TraceID string `json:"trace_id"`
			JobID   string `json:"job_id"`
			Outcome string `json:"outcome"`
			Events  int64  `json:"events"`
			RunMs   int64  `json:"run_ms"`
		} `json:"records"`
	}
	ferr := json.NewDecoder(fresp.Body).Decode(&flight)
	fresp.Body.Close()
	if ferr != nil || fresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/flight = %d, %v", fresp.StatusCode, ferr)
	}
	found := false
	for _, rec := range flight.Records {
		if rec.JobID == jr.ID {
			found = true
			if rec.TraceID != tid || rec.Outcome != "done" {
				t.Fatalf("flight record wrong: %+v", rec)
			}
			if rec.Events <= 0 {
				t.Fatalf("flight record has no event count: %+v", rec)
			}
		}
	}
	if !found {
		t.Fatalf("job %s absent from flight ring: %+v", jr.ID, flight.Records)
	}

	// The trace ID threads the whole JSON log stream: admission, attempt,
	// completion.
	logOut := d.out.String()
	if n := strings.Count(logOut, tid); n < 2 {
		t.Fatalf("trace ID %s appears %d times in daemon logs, want >= 2:\n%s", tid, n, logOut)
	}
	for _, want := range []string{`"msg":"job admitted"`, `"msg":"job done"`} {
		if !strings.Contains(logOut, want) {
			t.Errorf("daemon logs missing %s:\n%s", want, logOut)
		}
	}

	// Drain dumps the flight ring beside the store objects.
	d.sigterm(t)
	if _, err := os.Stat(filepath.Join(storeDir, "flight.sidecar")); err != nil {
		t.Fatalf("flight sidecar missing after drain: %v", err)
	}
	if !strings.Contains(d.out.String(), `"msg":"drain complete"`) {
		t.Fatalf("drain completion not logged:\n%s", d.out.String())
	}
}

// TestDaemonHealthzAndMetrics smoke-tests the operational endpoints of a
// live daemon process.
func TestDaemonHealthzAndMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e")
	}
	d := startDaemon(t, "-store", t.TempDir())
	resp, err := http.Get(d.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}
	m, err := http.Get(d.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m.Body.Close()
	if m.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", m.StatusCode)
	}
	d.sigterm(t)
}
